"""Integration tests pinning the paper's headline claims, cell by cell.

These are the reproduction's acceptance tests: each test names the paper
statement it checks and uses the strongest verification the instance size
allows (exact model checking where feasible, certified simulated
convergence elsewhere).
"""

import pytest

from repro.analysis.enumeration import (
    search,
    symmetric_leadered_protocols,
    symmetric_leaderless_protocols,
)
from repro.analysis.model_checker import check_naming_global
from repro.analysis.reachability import arbitrary_initial_configurations
from repro.analysis.weak_fairness import check_naming_weak
from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.global_naming import GlobalNamingProtocol
from repro.core.leader_uniform import LeaderUniformNamingProtocol
from repro.core.selfstab_naming import SelfStabilizingNamingProtocol
from repro.core.spec import Fairness, MobileInit
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.simulator import Simulator
from repro.schedulers.matching import MatchingScheduler


class TestProposition1:
    """Symmetric + weak fairness + no leader: impossible."""

    def test_matching_adversary_preserves_symmetry(self):
        n = 8
        protocol = SymmetricGlobalNamingProtocol(n)
        pop = Population(n)
        scheduler = MatchingScheduler(pop)
        simulator = Simulator(protocol, pop, scheduler, NamingProblem())
        budget = 50_000 - 50_000 % (n // 2)
        result = simulator.run(Configuration.uniform(pop, 2), budget)
        assert not result.converged
        assert len(set(result.final_configuration.mobile_states)) == 1

    def test_exhaustive_weak_refutation_p2(self):
        outcome = search(
            symmetric_leaderless_protocols(2),
            sizes=[2],
            fairness=Fairness.WEAK,
            mobile_init=MobileInit.UNIFORM,
        )
        assert not outcome.any_solves


class TestProposition2:
    """P-state symmetric leaderless naming impossible (both fairness)."""

    def test_exhaustive_global_refutation_p2(self):
        outcome = search(
            symmetric_leaderless_protocols(2),
            sizes=[2],
            fairness=Fairness.GLOBAL,
            mobile_init=MobileInit.UNIFORM,
        )
        assert not outcome.any_solves


class TestProposition4:
    """P-state symmetric naming impossible with an arbitrarily
    initialized leader (here: exhaustively for bounded leader spaces)."""

    @pytest.mark.parametrize("leader_states", [1, 2])
    def test_exhaustive_refutation(self, leader_states):
        outcome = search(
            symmetric_leadered_protocols(2, leader_states),
            sizes=[2],
            fairness=Fairness.GLOBAL,
            arbitrary_leader=True,
        )
        assert not outcome.any_solves


class TestProposition4Tightness:
    """The flip side of Prop. 4: Protocol 3 works *because* its leader is
    initialized - with an arbitrary leader the same P-state protocol
    fails, exactly as the proposition demands."""

    def test_protocol3_fails_with_arbitrary_leader(self):
        from repro.analysis.quotient import (
            arbitrary_quotient_initials,
            check_naming_global_quotient,
        )

        protocol = GlobalNamingProtocol(2)
        # leader_states=None: every leader state is a legal start.
        verdict = check_naming_global_quotient(
            protocol, arbitrary_quotient_initials(protocol, 2)
        )
        assert not verdict.solves

    def test_protocol3_succeeds_with_initialized_leader(self):
        from repro.analysis.quotient import (
            arbitrary_quotient_initials,
            check_naming_global_quotient,
        )

        protocol = GlobalNamingProtocol(2)
        verdict = check_naming_global_quotient(
            protocol,
            arbitrary_quotient_initials(
                protocol, 2, [protocol.initial_leader_state()]
            ),
        )
        assert verdict.solves


class TestTheorem11:
    """P-state symmetric naming impossible under weak fairness even with
    an INITIALIZED leader and non-initialized mobiles."""

    @pytest.mark.parametrize("leader_states", [1, 2])
    def test_exhaustive_refutation(self, leader_states):
        outcome = search(
            symmetric_leadered_protocols(2, leader_states),
            sizes=[2],
            fairness=Fairness.WEAK,
        )
        assert not outcome.any_solves

    def test_tightness_one_extra_state_suffices(self):
        protocol = SelfStabilizingNamingProtocol(2)  # 3 = P + 1 states
        pop = Population(2, has_leader=True)
        verdict = check_naming_weak(
            protocol, pop, arbitrary_initial_configurations(protocol, pop)
        )
        assert verdict.solves


class TestProposition12:
    """Asymmetric: P states, self-stabilizing, leaderless, any fairness."""

    @pytest.mark.parametrize("n", [2, 3])
    def test_exact_weak_verification(self, n):
        protocol = AsymmetricNamingProtocol(3)
        pop = Population(n)
        verdict = check_naming_weak(
            protocol, pop, arbitrary_initial_configurations(protocol, pop)
        )
        assert verdict.solves

    @pytest.mark.parametrize("n", [2, 3])
    def test_exact_global_verification(self, n):
        protocol = AsymmetricNamingProtocol(3)
        pop = Population(n)
        verdict = check_naming_global(
            protocol, pop, arbitrary_initial_configurations(protocol, pop)
        )
        assert verdict.solves


class TestProposition13:
    """Symmetric, leaderless, self-stabilizing, global fairness,
    P + 1 states, N > 2."""

    def test_exact_verification_n3(self):
        protocol = SymmetricGlobalNamingProtocol(3)
        pop = Population(3)
        verdict = check_naming_global(
            protocol, pop, arbitrary_initial_configurations(protocol, pop)
        )
        assert verdict.solves

    def test_n_greater_than_2_is_necessary(self):
        protocol = SymmetricGlobalNamingProtocol(3)
        pop = Population(2)
        verdict = check_naming_global(
            protocol, pop, arbitrary_initial_configurations(protocol, pop)
        )
        assert not verdict.solves


class TestProposition14:
    """Initialized leader + uniform initialization: P states, weak."""

    @pytest.mark.parametrize("n,bound", [(2, 2), (3, 3), (2, 3)])
    def test_exact_verification(self, n, bound):
        protocol = LeaderUniformNamingProtocol(bound)
        pop = Population(n, has_leader=True)
        start = Configuration.uniform(
            pop,
            protocol.initial_mobile_state(),
            protocol.initial_leader_state(),
        )
        verdict = check_naming_weak(protocol, pop, [start])
        assert verdict.solves


class TestProposition16:
    """Self-stabilizing naming, weak fairness, leader, P + 1 states."""

    @pytest.mark.parametrize("n,bound", [(2, 2), (3, 3)])
    def test_exact_verification_with_arbitrary_leader(self, n, bound):
        protocol = SelfStabilizingNamingProtocol(bound)
        pop = Population(n, has_leader=True)
        verdict = check_naming_weak(
            protocol, pop, arbitrary_initial_configurations(protocol, pop)
        )
        assert verdict.solves


class TestProposition17:
    """Initialized leader, global fairness, P states (incl. N = P)."""

    @pytest.mark.parametrize("n,bound", [(2, 2), (3, 3), (2, 4), (4, 4)])
    def test_exact_verification(self, n, bound):
        protocol = GlobalNamingProtocol(bound)
        pop = Population(n, has_leader=True)
        verdict = check_naming_global(
            protocol,
            pop,
            arbitrary_initial_configurations(
                protocol, pop, leader_states=[protocol.initial_leader_state()]
            ),
        )
        assert verdict.solves

    def test_p_states_fail_under_weak_fairness_at_full_population(self):
        """The same protocol under weak fairness cannot name N = P -
        exactly why Table 1 charges P + 1 states for that cell."""
        protocol = GlobalNamingProtocol(2)
        pop = Population(2, has_leader=True)
        verdict = check_naming_weak(
            protocol,
            pop,
            arbitrary_initial_configurations(
                protocol, pop, leader_states=[protocol.initial_leader_state()]
            ),
        )
        assert not verdict.solves
