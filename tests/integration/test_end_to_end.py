"""End-to-end integration tests: full library flows a user would run."""

import pytest

from repro import (
    Configuration,
    InfeasibleSpecError,
    NamingProblem,
    Population,
    RandomPairScheduler,
    RoundRobinScheduler,
    Simulator,
    Trace,
    protocol_for,
)
from repro.core.spec import (
    Fairness,
    LeaderKind,
    MobileInit,
    ModelSpec,
    Symmetry,
    all_specs,
    table1_cell,
)
from repro.engine.trace import replay
from repro.schedulers.random_pair import LeaderBiasedScheduler

FEASIBLE_SPECS = [s for s in all_specs() if table1_cell(s).feasible]


def build_run(spec, bound, n, seed=1, budget=2_000_000):
    protocol = protocol_for(spec, bound)
    population = Population(n, protocol.requires_leader)
    if spec.fairness is Fairness.WEAK:
        scheduler = RoundRobinScheduler(population, seed=seed)
    else:
        scheduler = RandomPairScheduler(population, seed=seed)
    mobile_space = sorted(protocol.mobile_state_space())
    if spec.mobile_init is MobileInit.UNIFORM:
        value = protocol.initial_mobile_state()
        mobile = value if value is not None else mobile_space[0]
    else:
        mobile = mobile_space[0]
    leader = (
        protocol.initial_leader_state() if population.has_leader else None
    )
    initial = Configuration.uniform(population, mobile, leader)
    simulator = Simulator(protocol, population, scheduler, NamingProblem())
    return simulator.run(initial, max_interactions=budget)


class TestEverySpecEndToEnd:
    @pytest.mark.parametrize(
        "spec", FEASIBLE_SPECS, ids=lambda s: s.describe()
    )
    def test_registry_protocol_converges(self, spec):
        bound = 4
        uses_prop13 = (
            spec.symmetry is Symmetry.SYMMETRIC
            and spec.fairness is Fairness.GLOBAL
            and spec.leader is not LeaderKind.INITIALIZED
        )
        n = 4 if not uses_prop13 else 3
        result = build_run(spec, bound, n)
        assert result.converged, spec.describe()
        assert len(set(result.names())) == n

    def test_infeasible_spec_raises(self):
        spec = ModelSpec(
            Fairness.WEAK,
            Symmetry.SYMMETRIC,
            LeaderKind.NONE,
            MobileInit.ARBITRARY,
        )
        with pytest.raises(InfeasibleSpecError):
            protocol_for(spec, 4)


class TestTraceabilityEndToEnd:
    def test_full_trace_replays_for_leadered_protocol(self):
        spec = ModelSpec(
            Fairness.WEAK,
            Symmetry.SYMMETRIC,
            LeaderKind.NON_INITIALIZED,
            MobileInit.ARBITRARY,
        )
        protocol = protocol_for(spec, 4)
        pop = Population(4, has_leader=True)
        scheduler = RoundRobinScheduler(pop)
        simulator = Simulator(protocol, pop, scheduler, NamingProblem())
        trace = Trace(capacity=None, record_null=True)
        initial = Configuration.uniform(
            pop, 1, protocol.initial_leader_state()
        )
        result = simulator.run(initial, trace=trace)
        assert result.converged
        assert replay(initial, trace.records) == result.final_configuration


class TestLeaderBiasedFlow:
    def test_starving_the_leader_slows_convergence(self):
        """Protocol 2 only makes naming progress in BST meetings, so a
        schedule that rarely involves the leader converges later - the
        ablation the LeaderBiasedScheduler exists for.  (Interestingly the
        reverse is not monotone: an extreme leader bias starves the
        homonym-dissolving mobile meetings instead.)"""
        from repro.core.selfstab_naming import SelfStabilizingNamingProtocol

        protocol = SelfStabilizingNamingProtocol(6)
        pop = Population(6, has_leader=True)
        initial = Configuration.uniform(
            pop, 1, protocol.initial_leader_state()
        )

        def run_with(scheduler):
            simulator = Simulator(protocol, pop, scheduler, NamingProblem())
            result = simulator.run(initial, max_interactions=4_000_000)
            assert result.converged
            return result.convergence_interaction

        starved = [
            run_with(LeaderBiasedScheduler(pop, seed=s, leader_bias=0.02))
            for s in range(5)
        ]
        unbiased = [
            run_with(RandomPairScheduler(pop, seed=s)) for s in range(5)
        ]
        assert sum(starved) / len(starved) > sum(unbiased) / len(unbiased)
