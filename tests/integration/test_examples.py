"""The examples must keep running: each is executed as a subprocess."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: int = 600) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "final names" in out
        assert "asymmetric naming" in out

    def test_sensor_network(self):
        out = run_example("sensor_network.py")
        assert "self-stabilizing bootstrap" in out
        assert "transient fault burst" in out
        assert "recovered after" in out

    def test_anonymous_social(self):
        out = run_example("anonymous_social.py")
        assert "naming 7 equal peers" in out
        assert "converged = False" in out  # the N = 2 demonstration

    def test_impossibility_tour(self):
        out = run_example("impossibility_tour.py")
        assert "all six impossibility demonstrations hold" in out

    def test_reproduce_table1(self):
        out = run_example("reproduce_table1.py")
        assert "cells matching the paper: 24/24" in out

    def test_leader_election(self):
        out = run_example("leader_election.py")
        assert "electing a leader" in out
        assert out.count("re-elected agent") == 3

    def test_exact_analysis(self):
        out = run_example("exact_analysis.py")
        assert "solves naming under global fairness : True" in out
        assert "1,962,290,181" in out
