"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestSimulate:
    def test_default_simulation_converges(self, capsys):
        code = main(
            ["simulate", "--symmetry", "asymmetric", "-P", "5", "-N", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "converged" in out
        assert "Proposition 12" in out

    def test_symmetric_global_leaderless(self, capsys):
        code = main(
            [
                "simulate",
                "--symmetry",
                "symmetric",
                "--fairness",
                "global",
                "--leader",
                "none",
                "-P",
                "5",
                "-N",
                "4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Proposition 13" in out

    def test_infeasible_model_reports_and_fails(self, capsys):
        code = main(
            [
                "simulate",
                "--symmetry",
                "symmetric",
                "--fairness",
                "weak",
                "--leader",
                "none",
            ]
        )
        out = capsys.readouterr().out
        assert code == 2
        assert "infeasible" in out

    def test_trace_flag_prints_interactions(self, capsys):
        code = main(
            [
                "simulate",
                "--symmetry",
                "asymmetric",
                "-P",
                "4",
                "-N",
                "4",
                "--trace",
                "5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "trace:" in out

    def test_fast_backend_matches_reference(self, capsys):
        argv = ["simulate", "--symmetry", "asymmetric", "-P", "5", "-N", "4"]
        assert main(argv + ["--backend", "reference"]) == 0
        reference_out = capsys.readouterr().out
        assert main(argv + ["--backend", "fast"]) == 0
        assert capsys.readouterr().out == reference_out

    @pytest.mark.parametrize(
        "backend", ["reference", "fast", "counts", "bleap"]
    )
    def test_verbose_prints_perf_line(self, capsys, backend):
        argv = [
            "simulate",
            "--symmetry",
            "asymmetric",
            "-P",
            "5",
            "-N",
            "4",
            "--backend",
            backend,
        ]
        assert main(argv + ["--verbose"]) == 0
        verbose_out = capsys.readouterr().out
        assert "perf      :" in verbose_out
        assert "interactions/s" in verbose_out
        assert f"[{backend} backend]" in verbose_out
        # Without --verbose the perf line must not appear (the default
        # output stays byte-identical across stream-identical backends).
        assert main(argv) == 0
        assert "perf" not in capsys.readouterr().out

    def test_verbose_bleap_prints_window_stats(self, capsys):
        """The tau-leaping ensemble backend's per-run stats carry the
        window counters into the --verbose perf line."""
        argv = [
            "simulate",
            "--symmetry",
            "asymmetric",
            "-P",
            "5",
            "-N",
            "4",
            "--backend",
            "bleap",
            "--verbose",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "leaps" in out
        assert "SSA-fallback rows" in out
        assert "[bleap backend]" in out

    def test_leadered_simulation(self, capsys):
        code = main(
            [
                "simulate",
                "--symmetry",
                "symmetric",
                "--fairness",
                "weak",
                "--leader",
                "initialized",
                "--init",
                "uniform",
                "-P",
                "4",
                "-N",
                "4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Proposition 14" in out


class TestDelegation:
    def test_table1_delegates(self, capsys):
        code = main(["table1", "--bound", "3", "--budget", "150000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "all 24 cells match the paper" in out

    def test_lower_bounds_delegates(self, capsys):
        code = main(["lower-bounds", "--skip-p3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "exhaustive lower-bound verification" in out

    def test_convergence_delegates(self, capsys):
        code = main(["convergence", "--bound", "4", "--runs", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "interactions to certified convergence" in out

    def test_convergence_verbose_bleap_stats(self, capsys):
        code = main(
            [
                "convergence",
                "--bound",
                "4",
                "--runs",
                "3",
                "--backend",
                "bleap",
                "--verbose",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "ensemble performance per cell:" in out
        assert "SSA-fallback rows" in out

    def test_recovery_delegates(self, capsys):
        code = main(
            ["recovery", "--bound", "4", "--n", "3", "--runs", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "re-convergence" in out

    def test_ablation_delegates(self, capsys):
        code = main(["ablation", "--bound", "4", "--budget", "100000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "scheduler ablation" in out

    def test_scaling_delegates(self, capsys):
        code = main(["scaling", "--max-n", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "exact-verification scaling" in out

    def test_time_study_delegates(self, capsys):
        code = main(["time-study", "--bound", "6", "--runs", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "power-law fits" in out

    def test_bench_delegates(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--smoke",
                "--sizes",
                "6",
                "--out",
                str(out_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "backend throughput" in out
        payload = out_path.read_text()
        assert '"speedup"' in payload
        assert '"fast"' in payload


class TestShow:
    def test_show_prints_rules(self, capsys):
        code = main(
            [
                "show",
                "--symmetry",
                "symmetric",
                "--fairness",
                "global",
                "--leader",
                "none",
                "-P",
                "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Proposition 13" in out
        assert "->" in out

    def test_show_infeasible(self, capsys):
        code = main(
            [
                "show",
                "--symmetry",
                "symmetric",
                "--fairness",
                "weak",
                "--leader",
                "none",
            ]
        )
        assert code == 2
        assert "infeasible" in capsys.readouterr().out


class TestParser:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_choice_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--fairness", "chaotic"])
