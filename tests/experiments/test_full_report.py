"""Tests for the one-command report regeneration."""

import pytest

from repro.experiments.full_report import build_report, main


@pytest.fixture(scope="module")
def report():
    return build_report(quick=True, bound=4)


class TestBuildReport:
    def test_contains_every_section(self, report):
        assert "Table 1 regeneration - 24/24 cells match" in report
        for exp in ("exp-s1", "exp-s2", "exp-s3", "exp-s4", "exp-s5",
                    "exp-s6", "exp-s7", "exp-s8"):
            assert f"{exp}:" in report

    def test_is_markdown_with_code_fences(self, report):
        assert report.startswith("# Reproduction report")
        assert report.count("```text") == report.count("```") // 2

    def test_footer_asserts_verdicts(self, report):
        assert "all verdicts asserted programmatically" in report
        assert "table1 24/24" in report

    def test_main_writes_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main(["--quick", "--bound", "4", "--out", str(out)])
        assert code == 0
        assert out.exists()
        assert "Reproduction report" in out.read_text()
        assert "report written" in capsys.readouterr().out
