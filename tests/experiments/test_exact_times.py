"""Tests for the exact expected-time experiment (exp-s8)."""

import pytest

from repro.experiments.exact_times import (
    render_points,
    run_exact_times,
    validate,
)


@pytest.fixture(scope="module")
def points():
    return run_exact_times(validation_runs=60, max_protocol3_bound=5)


class TestExactTimes:
    def test_validation_rows_agree_with_simulation(self, points):
        assert validate(points, tolerance=0.2)

    def test_beyond_simulation_rows_present(self, points):
        unreachable = [p for p in points if p.simulated_mean is None]
        assert unreachable
        assert all("Protocol 3" in p.protocol for p in unreachable)

    def test_protocol3_wall_quantified(self, points):
        protocol3 = sorted(
            (p for p in points if "Protocol 3" in p.protocol),
            key=lambda p: p.bound,
        )
        exacts = [p.exact for p in protocol3]
        assert exacts == sorted(exacts)
        assert exacts[-1] > 1e9  # P = 5: ~2e9 expected interactions

    def test_solve_is_fast(self, points):
        assert all(p.seconds < 10 for p in points)

    def test_render(self, points):
        text = render_points(points)
        assert "exact E[interactions]" in text
        assert "out of simulation reach" in text
