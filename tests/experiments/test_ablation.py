"""Tests for the scheduler-ablation experiment."""

import pytest

from repro.experiments.ablation import render_points, run_ablation


@pytest.fixture(scope="module")
def points():
    return run_ablation(bound=4, seed=3, budget=120_000)


class TestAblation:
    def test_all_expectations_met(self, points):
        mismatches = [p for p in points if not p.matches]
        assert not mismatches, [
            (p.protocol, p.scheduler, p.expect_convergence, p.converged)
            for p in mismatches
        ]

    def test_asymmetric_beats_every_scheduler(self, points):
        asym = [
            p
            for p in points
            if "Prop. 12" in p.protocol and "symmetrized" not in p.protocol
        ]
        assert len(asym) == 4
        assert all(p.converged for p in asym)

    def test_transformer_needs_global_fairness(self, points):
        transformed = [p for p in points if "symmetrized" in p.protocol]
        assert len(transformed) == 2
        random_row = next(
            p for p in transformed if "random" in p.scheduler
        )
        matching_row = next(
            p for p in transformed if "matching" in p.scheduler
        )
        assert random_row.converged
        assert not matching_row.converged

    def test_prop13_livelocks_under_matching_adversary(self, points):
        livelock = [
            p
            for p in points
            if "Prop. 13" in p.protocol and "matching" in p.scheduler
        ]
        assert livelock and not livelock[0].converged

    def test_protocol2_converges_under_weak_schedulers(self, points):
        p2 = [p for p in points if "Protocol 2" in p.protocol]
        assert len(p2) == 3
        assert all(p.converged for p in p2)

    def test_render(self, points):
        text = render_points(points)
        assert "scheduler ablation" in text
        assert "livelock" in text
