"""Tests for the recovery experiment."""

import pytest

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.engine.population import Population
from repro.experiments.recovery import (
    measure_recovery,
    render_points,
    run_recovery,
)
from repro.faults.injection import corrupt_all_mobile_to


class TestMeasureRecovery:
    def test_recovery_sample(self):
        protocol = AsymmetricNamingProtocol(5)
        population = Population(5)
        point = measure_recovery(
            protocol,
            population,
            corrupt_all_mobile_to(population, 0),
            "collapse",
            seeds=range(4),
            budget=500_000,
        )
        assert point.summary.count == 4
        assert point.corruption == "collapse"
        # Collapsing all five names forces real recovery work.
        assert point.summary.maximum > 0


class TestRunRecovery:
    @pytest.fixture(scope="class")
    def points(self):
        return run_recovery(bound=5, n_mobile=4, runs=3, budget=1_000_000)

    def test_covers_all_selfstab_protocols(self, points):
        names = {p.protocol for p in points}
        assert any("Prop. 12" in n for n in names)
        assert any("Prop. 13" in n for n in names)
        assert any("Prop. 16" in n for n in names)

    def test_benign_leader_corruption_is_free(self, points):
        benign = [p for p in points if "benign" in p.corruption]
        assert benign and all(p.summary.maximum == 0 for p in benign)

    def test_leader_amnesia_costs_something(self, points):
        amnesia = [p for p in points if "forgets" in p.corruption]
        assert amnesia

    def test_render(self, points):
        text = render_points(points)
        assert "corruption" in text
        assert "Prop. 16" in text
