"""Tests for the time-complexity study (exp-s6)."""

import math

import pytest

from repro.errors import VerificationError
from repro.experiments.time_study import (
    fit_power_law,
    render_fits,
    run_time_study,
)


class TestFitPowerLaw:
    def test_exact_power_law_recovered(self):
        sizes = [2, 4, 8, 16]
        means = [3 * n**2 for n in sizes]
        fit = fit_power_law(sizes, means, "quadratic")
        assert fit.exponent == pytest.approx(2.0)
        assert fit.coefficient == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_constant_series(self):
        fit = fit_power_law([2, 4, 8], [5, 5, 5], "flat")
        assert fit.exponent == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_fit_reports_r_squared(self):
        sizes = [2, 4, 8, 16]
        means = [4.1, 15.2, 70.0, 250.0]  # roughly quadratic
        fit = fit_power_law(sizes, means, "noisy")
        assert 1.5 < fit.exponent < 2.5
        assert 0.9 < fit.r_squared <= 1.0

    def test_rejects_too_few_points(self):
        with pytest.raises(VerificationError):
            fit_power_law([2], [3], "x")

    def test_rejects_nonpositive_means(self):
        with pytest.raises(VerificationError):
            fit_power_law([2, 4], [0, 3], "x")

    def test_rejects_degenerate_sizes(self):
        with pytest.raises(VerificationError):
            fit_power_law([4, 4], [1, 2], "x")

    def test_log_linearity(self):
        # exponent must be invariant under scaling the coefficient.
        a = fit_power_law([2, 4, 8], [10, 40, 160], "a")
        b = fit_power_law([2, 4, 8], [100, 400, 1600], "b")
        assert a.exponent == pytest.approx(b.exponent)


class TestRunTimeStudy:
    @pytest.fixture(scope="class")
    def fits(self):
        return run_time_study(bound=7, runs=10, budget=5_000_000)

    def test_covers_all_protocols(self, fits):
        assert len(fits) == 5

    def test_growth_is_positive(self, fits):
        assert all(f.exponent > 0 for f in fits)

    def test_selfstab_grows_faster_than_initialized(self, fits):
        by_name = {f.protocol: f for f in fits}
        selfstab = next(
            v for k, v in by_name.items() if "Protocol 2" in k
        )
        initialized = next(
            v for k, v in by_name.items() if "Prop. 14" in k
        )
        assert selfstab.exponent > initialized.exponent

    def test_fits_are_not_garbage(self, fits):
        # Small samples are noisy, but the log-log fit should explain most
        # of the variance for every series.
        assert all(f.r_squared > 0.6 for f in fits)

    def test_render(self, fits):
        text = render_fits(fits)
        assert "exponent" in text
        assert "R^2" in text
