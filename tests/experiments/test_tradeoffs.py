"""Tests for the trade-off synthesis experiment (exp-s7)."""

import pytest

from repro.experiments.tradeoffs import render_rows, run_tradeoffs


@pytest.fixture(scope="module")
def rows():
    return run_tradeoffs(bound=5, n_mobile=4, runs=4, budget=2_000_000)


class TestTradeoffs:
    def test_one_row_per_positive_protocol(self, rows):
        assert len(rows) == 5
        assert {r.reference for r in rows} == {
            "Prop. 12",
            "Prop. 13",
            "Prop. 14",
            "Prop. 16",
            "Prop. 17",
        }

    def test_state_counts_match_table1(self, rows):
        by_ref = {r.reference: r.states for r in rows}
        assert by_ref["Prop. 12"] == 5
        assert by_ref["Prop. 13"] == 6
        assert by_ref["Prop. 14"] == 5
        assert by_ref["Prop. 16"] == 6
        assert by_ref["Prop. 17"] == 5

    def test_only_selfstab_rows_have_recovery(self, rows):
        by_ref = {r.reference: r for r in rows}
        assert by_ref["Prop. 12"].recovery is not None
        assert by_ref["Prop. 13"].recovery is not None
        assert by_ref["Prop. 16"].recovery is not None
        assert by_ref["Prop. 14"].recovery is None
        assert by_ref["Prop. 17"].recovery is None

    def test_the_asymmetric_protocol_dominates(self, rows):
        """The trade-off table's headline: asymmetric rules get the
        minimum of everything - P states, weak fairness, no leader, no
        initialization - and the cheapest convergence."""
        by_ref = {r.reference: r for r in rows}
        asym = by_ref["Prop. 12"]
        assert asym.states == min(r.states for r in rows)
        assert asym.convergence.mean == min(
            r.convergence.mean for r in rows
        )

    def test_render(self, rows):
        text = render_rows(rows, bound=5)
        assert "trade-offs" in text
        assert "n/a" in text
