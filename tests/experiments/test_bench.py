"""Tests for the simulation-backend micro-benchmark."""

import json

import pytest

from repro.engine.fast import compile_table
from repro.experiments.bench import (
    ChurnProtocol,
    run_bench,
    speedups,
    workloads,
    write_json,
)


class TestChurnProtocol:
    def test_every_interaction_is_non_null(self):
        protocol = ChurnProtocol()
        for p in protocol.mobile_state_space():
            for q in protocol.mobile_state_space():
                assert protocol.transition(p, q) != (p, q)

    def test_even_modulus_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            ChurnProtocol(8)

    def test_compiles_for_the_fast_backend(self):
        assert compile_table(ChurnProtocol()) is not None


class TestRunBench:
    def test_smoke_run_produces_all_cells(self, tmp_path):
        points = run_bench(sizes=(6,), seed=1, scale=0.02)
        assert len(points) == len(workloads()) * 2  # two backends
        assert all(p.interactions > 0 and p.seconds >= 0 for p in points)
        ratios = speedups(points)
        assert set(ratios) == set(workloads())

    def test_json_payload_round_trips(self, tmp_path):
        points = run_bench(sizes=(6,), seed=1, scale=0.02)
        out = tmp_path / "bench.json"
        write_json(points, str(out), seed=1, scale=0.02)
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "simulator"
        assert len(payload["points"]) == len(points)
        assert "speedup" in payload
