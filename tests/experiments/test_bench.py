"""Tests for the simulation-backend micro-benchmark."""

import json

import pytest

from repro.engine.fast import compile_table
from repro.experiments.bench import (
    PARALLEL_MIN_CORES,
    REFERENCE_MAX_N,
    SECTIONS,
    BenchPoint,
    ChurnProtocol,
    EnsembleBenchPoint,
    FluidBenchPoint,
    LeapBenchPoint,
    ParallelBenchPoint,
    _safe_rate,
    ensemble_floor_rate,
    ensemble_speedups,
    environment,
    floor_rate,
    fluid_speedup,
    leap_speedup,
    main,
    parallel_speedups,
    render_ensemble_points,
    render_fluid_points,
    render_leap_points,
    render_parallel_points,
    run_bench,
    run_ensemble_bench,
    run_fluid_bench,
    run_leap_bench,
    run_parallel_bench,
    speedups,
    workloads,
    write_json,
)


class TestChurnProtocol:
    def test_every_interaction_is_non_null(self):
        protocol = ChurnProtocol()
        for p in protocol.mobile_state_space():
            for q in protocol.mobile_state_space():
                assert protocol.transition(p, q) != (p, q)

    def test_even_modulus_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            ChurnProtocol(8)

    def test_compiles_for_the_fast_backend(self):
        assert compile_table(ChurnProtocol()) is not None


class TestRunBench:
    def test_smoke_run_produces_all_cells(self, tmp_path):
        # N = 12 exceeds the naming bound (8), so the spread start never
        # converges and every backend runs its whole budget.
        points = run_bench(sizes=(12,), seed=1, scale=0.02)
        assert len(points) == len(workloads()) * 3  # three backends
        assert all(p.interactions > 0 and p.seconds >= 0 for p in points)
        ratios = speedups(points)
        assert set(ratios) == set(workloads())
        for per_size in ratios.values():
            cell = per_size["12"]
            assert set(cell) == {"fast/reference", "counts/fast"}
            assert all(v > 0 for v in cell.values())

    def test_reference_backend_skipped_above_cap(self):
        n = REFERENCE_MAX_N + 1
        points = run_bench(sizes=(n,), seed=1, scale=0.002)
        backends = {p.backend for p in points}
        assert backends == {"fast", "counts"}
        # Only the counts/fast pair is reportable without a reference.
        ratios = speedups(points)
        for per_size in ratios.values():
            assert set(per_size[str(n)]) == {"counts/fast"}

    def test_floor_rate_reads_largest_naming_cell(self):
        points = run_bench(sizes=(6, 12), seed=1, scale=0.02)
        rate = floor_rate(points)
        expected = [
            p
            for p in points
            if p.workload == "naming"
            and p.backend == "counts"
            and p.n_mobile == 12
        ]
        assert rate == expected[0].rate
        assert floor_rate([]) is None

    def test_json_payload_round_trips(self, tmp_path):
        points = run_bench(sizes=(6,), seed=1, scale=0.02)
        out = tmp_path / "bench.json"
        write_json(points, str(out), seed=1, scale=0.02)
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "simulator"
        assert len(payload["points"]) == len(points)
        assert "speedup" in payload

    def test_json_payload_records_environment(self, tmp_path):
        points = run_bench(sizes=(6,), seed=1, scale=0.02)
        out = tmp_path / "bench.json"
        write_json(points, str(out), seed=1, scale=0.02)
        env = json.loads(out.read_text())["environment"]
        # Perf regressions must be attributable: the report says which
        # NumPy, how many CPUs and which revision produced the numbers.
        assert set(env) == {"numpy", "cpu_count", "git_revision"}
        assert env["cpu_count"] is None or env["cpu_count"] >= 1

    def test_environment_fields_present(self):
        env = environment()
        assert set(env) == {"numpy", "cpu_count", "git_revision"}


class TestSafeRate:
    """Regression tests for the ``seconds == 0`` sentinel: a run that
    finishes inside one timer tick must read as infinitely *fast*, not
    infinitely slow (rate 0.0 would spuriously trip the floor gates)."""

    def test_zero_seconds_with_work_is_infinite(self):
        assert _safe_rate(100, 0.0) == float("inf")

    def test_zero_seconds_without_work_is_zero(self):
        assert _safe_rate(0, 0.0) == 0.0

    def test_positive_seconds_divides(self):
        assert _safe_rate(100, 2.0) == 50.0

    def test_bench_point_rate_never_raises(self):
        point = BenchPoint(
            workload="naming",
            backend="counts",
            n_mobile=10,
            interactions=1000,
            non_null_interactions=10,
            seconds=0.0,
        )
        assert point.rate == float("inf")

    def test_ensemble_point_runs_per_second_never_raises(self):
        point = EnsembleBenchPoint(
            engine="batch",
            n_mobile=10,
            replicates=8,
            interactions=1000,
            non_null_interactions=10,
            seconds=0.0,
        )
        assert point.runs_per_second == float("inf")
        assert point.rate == float("inf")

    def test_zero_time_cell_passes_floor_gate(self):
        # The point of the sentinel: an instantaneous batch cell must
        # satisfy any floor, not fail every floor.
        point = EnsembleBenchPoint(
            engine="batch",
            n_mobile=10,
            replicates=8,
            interactions=1000,
            non_null_interactions=10,
            seconds=0.0,
        )
        assert ensemble_floor_rate([point]) >= 1e12


class TestEnsembleBench:
    def test_smoke_run_produces_both_engines_per_cell(self):
        points = run_ensemble_bench(
            sizes=(12,), replicates=(4, 8), seed=1, scale=0.02
        )
        # counts and batch per (N, R) cell
        assert len(points) == 2 * 2
        assert {p.engine for p in points} == {"counts", "batch"}
        assert all(p.interactions > 0 and p.seconds >= 0 for p in points)
        assert all(p.runs_per_second > 0 for p in points)
        ratios = ensemble_speedups(points)
        assert set(ratios) == {"12"}
        assert set(ratios["12"]) == {"R=4", "R=8"}
        assert all(v > 0 for v in ratios["12"].values())

    def test_ensemble_floor_rate_reads_widest_batch_cell(self):
        def cell(engine, n, r, rate):
            return EnsembleBenchPoint(
                engine=engine,
                n_mobile=n,
                replicates=r,
                interactions=int(rate),
                non_null_interactions=0,
                seconds=1.0,
            )

        points = [
            cell("counts", 10, 4, 100.0),
            cell("batch", 10, 4, 300.0),
            cell("counts", 10, 8, 100.0),
            cell("batch", 10, 8, 700.0),
        ]
        # Most replicates wins (ties would break by population size).
        assert ensemble_floor_rate(points) == 700.0
        assert ensemble_floor_rate([points[0]]) is None
        assert ensemble_floor_rate([]) is None

    def test_render_marks_batch_speedup(self):
        points = run_ensemble_bench(
            sizes=(12,), replicates=(4,), seed=1, scale=0.02
        )
        table = render_ensemble_points(points)
        assert "ensemble throughput" in table
        assert "x vs counts" in table

    def test_json_payload_includes_ensemble_section(self, tmp_path):
        points = run_bench(sizes=(6,), seed=1, scale=0.02)
        ensemble = run_ensemble_bench(
            sizes=(12,), replicates=(4,), seed=1, scale=0.02
        )
        out = tmp_path / "bench.json"
        write_json(points, str(out), seed=1, scale=0.02, ensemble=ensemble)
        payload = json.loads(out.read_text())
        section = payload["ensemble"]
        assert section["workload"] == "naming"
        assert len(section["points"]) == len(ensemble)
        assert "speedup" in section


class TestLeapBench:
    def test_smoke_run_produces_both_backends(self):
        points = run_leap_bench(n=50_000, seed=1, scale=0.02)
        assert [p.backend for p in points] == ["counts", "leap"]
        assert all(p.interactions > 0 and p.seconds >= 0 for p in points)
        leap_point = points[1]
        # The leap cell reports its window statistics.
        assert leap_point.leaps is not None and leap_point.leaps > 0
        assert leap_point.mean_tau > 0
        assert leap_point.repairs >= 0
        # The counts baseline has no window statistics.
        assert points[0].leaps is None

    def test_leap_speedup_requires_both_cells(self):
        def cell(backend, rate):
            return LeapBenchPoint(
                backend=backend,
                n_mobile=10,
                interactions=int(rate),
                non_null_interactions=0,
                seconds=1.0,
            )

        assert leap_speedup([cell("counts", 100), cell("leap", 700)]) == 7.0
        assert leap_speedup([cell("counts", 100)]) is None
        assert leap_speedup([]) is None

    def test_render_marks_leap_speedup(self):
        points = run_leap_bench(n=50_000, seed=1, scale=0.02)
        table = render_leap_points(points)
        assert "leap throughput" in table
        assert "exact baseline" in table
        assert "x vs counts" in table

    def test_leap_eps_forwarded(self):
        points = run_leap_bench(n=50_000, seed=1, scale=0.02, leap_eps=0.2)
        assert [p.backend for p in points] == ["counts", "leap"]

    def test_json_payload_includes_leap_section(self, tmp_path):
        points = run_bench(sizes=(6,), seed=1, scale=0.02)
        leap = run_leap_bench(n=50_000, seed=1, scale=0.02)
        out = tmp_path / "bench.json"
        write_json(points, str(out), seed=1, scale=0.02, leap=leap)
        payload = json.loads(out.read_text())
        section = payload["leap"]
        assert section["workload"] == "naming"
        assert len(section["points"]) == 2
        assert section["speedup"] > 0


class TestFluidBench:
    def test_smoke_run_produces_both_backends(self):
        points = run_fluid_bench(n=20_000, seed=1, scale=0.02)
        assert [p.backend for p in points] == ["leap", "fluid"]
        assert all(p.interactions > 0 and p.seconds >= 0 for p in points)
        fluid_point = points[1]
        # The fluid cell reports its ODE/handoff statistics; the
        # stochastic leap baseline has none.
        assert fluid_point.ode_steps is not None
        assert fluid_point.ode_steps > 0
        assert fluid_point.handoff_backend == "leap"
        assert points[0].ode_steps is None

    def test_fluid_speedup_requires_both_cells(self):
        def cell(backend, seconds):
            return FluidBenchPoint(
                backend=backend,
                n_mobile=10,
                interactions=100,
                seconds=seconds,
            )

        points = [cell("leap", 6.0), cell("fluid", 2.0)]
        assert fluid_speedup(points) == 3.0
        assert fluid_speedup([points[0]]) is None
        assert fluid_speedup([]) is None

    def test_render_marks_fluid_speedup(self):
        points = run_fluid_bench(n=20_000, seed=1, scale=0.02)
        table = render_fluid_points(points)
        assert "fluid fast-forward" in table
        assert "stochastic baseline" in table
        assert "ODE steps" in table

    def test_json_payload_includes_fluid_section(self, tmp_path):
        points = run_bench(sizes=(6,), seed=1, scale=0.02)
        fluid = run_fluid_bench(n=20_000, seed=1, scale=0.02)
        out = tmp_path / "bench.json"
        write_json(points, str(out), seed=1, scale=0.02, fluid=fluid)
        payload = json.loads(out.read_text())
        section = payload["fluid"]
        assert section["workload"] == "naming"
        assert len(section["points"]) == 2
        assert section["speedup"] > 0
        fluid_cell = [
            p for p in section["points"] if p["backend"] == "fluid"
        ][0]
        assert fluid_cell["ode_steps"] > 0
        assert fluid_cell["handoff_backend"] == "leap"


class TestSectionsSelector:
    def test_sections_selector_runs_only_selected(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main(
            [
                "--smoke",
                "--sections",
                "leap",
                "--leap-n",
                "20000",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["points"] == []
        assert "leap" in payload
        for omitted in ("ensemble", "bleap", "fluid", "parallel"):
            assert omitted not in payload
        shown = capsys.readouterr().out
        assert "leap throughput" in shown
        assert "ensemble throughput" not in shown

    def test_all_sections_named(self):
        assert SECTIONS == (
            "backends", "ensemble", "leap", "bleap", "fluid", "parallel"
        )

    def test_unknown_section_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--sections", "nope"])
        assert exc.value.code == 2
        assert "unknown section" in capsys.readouterr().err

    def test_floor_for_deselected_section_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--sections", "leap", "--fluid-floor", "1.0"])
        assert exc.value.code == 2
        assert "deselected" in capsys.readouterr().err

    def test_fluid_floor_gate_passes_on_tiny_ratio(self, tmp_path):
        out = tmp_path / "bench.json"
        code = main(
            [
                "--smoke",
                "--sections",
                "fluid",
                "--fluid-n",
                "20000",
                "--fluid-floor",
                "0.0001",
                "--out",
                str(out),
            ]
        )
        assert code == 0


class TestParallelBench:
    def test_smoke_run_produces_all_four_cells(self):
        points = run_parallel_bench(
            n=2_000, replicates=48, seed=1, scale=0.02, jobs=2
        )
        cells = {(p.kind, p.mode) for p in points}
        assert cells == {
            ("lockstep", "serial"),
            ("lockstep", "sharded"),
            ("frontier", "serial"),
            ("frontier", "sharded"),
        }
        assert all(p.work > 0 and p.seconds >= 0 for p in points)
        # Serial and sharded lockstep cells are seed-identical runs of
        # the same workload, so they must report identical work.
        work = {p.mode: p.work for p in points if p.kind == "lockstep"}
        assert work["serial"] == work["sharded"]
        ratios = parallel_speedups(points)
        assert set(ratios) == {"lockstep", "frontier"}
        assert all(v > 0 for v in ratios.values())

    def test_sharded_lockstep_cell_reports_shm_transport(self):
        from repro.engine.parallel import shm_available

        points = run_parallel_bench(
            n=2_000, replicates=48, seed=1, scale=0.02, jobs=2
        )
        sharded = [
            p for p in points
            if p.kind == "lockstep" and p.mode == "sharded"
        ][0]
        if shm_available()[0]:
            assert sharded.shards == 2
            assert sharded.shm_bytes > 0
            assert sharded.copy_bytes_saved > 0
        serial = [
            p for p in points
            if p.kind == "lockstep" and p.mode == "serial"
        ][0]
        assert serial.shards is None

    def test_render_marks_speedup_and_transport(self):
        points = [
            ParallelBenchPoint(
                kind="lockstep", mode="serial", n_mobile=100,
                replicates=8, work=800, seconds=0.2, jobs=1,
            ),
            ParallelBenchPoint(
                kind="lockstep", mode="sharded", n_mobile=100,
                replicates=8, work=800, seconds=0.1, jobs=4,
                shards=4, shm_bytes=4096, copy_bytes_saved=2048,
            ),
        ]
        table = render_parallel_points(points)
        assert "shared-memory sharding" in table
        assert "2.00x vs serial" in table
        assert "4 shards" in table
        assert "copies saved" in table

    def test_json_payload_includes_parallel_section(self, tmp_path):
        points = run_parallel_bench(
            n=2_000, replicates=48, seed=1, scale=0.02, jobs=2
        )
        out = tmp_path / "bench.json"
        write_json([], str(out), seed=1, scale=0.02, parallel=points)
        payload = json.loads(out.read_text())
        section = payload["parallel"]
        assert len(section["points"]) == 4
        assert set(section["speedup"]) == {"lockstep", "frontier"}
        for cell in section["points"]:
            assert cell["seconds"] >= 0
            assert cell["work"] > 0

    def test_json_payload_records_section_wall_clock(self, tmp_path):
        # Satellite: every section that ran reports its wall-clock cost
        # and the payload totals them.
        out = tmp_path / "bench.json"
        code = main(
            [
                "--smoke",
                "--sections",
                "parallel",
                "--parallel-n",
                "2000",
                "--parallel-reps",
                "48",
                "--parallel-jobs",
                "2",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert set(payload["section_seconds"]) == {"parallel"}
        assert payload["section_seconds"]["parallel"] > 0
        assert payload["total_seconds"] == pytest.approx(
            sum(payload["section_seconds"].values())
        )

    def test_floor_gate_skips_below_core_floor(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setattr("os.cpu_count", lambda: PARALLEL_MIN_CORES - 1)
        out = tmp_path / "bench.json"
        code = main(
            [
                "--smoke",
                "--sections",
                "parallel",
                "--parallel-n",
                "2000",
                "--parallel-reps",
                "48",
                "--parallel-jobs",
                "2",
                "--parallel-floor",
                "1000.0",
                "--out",
                str(out),
            ]
        )
        # An absurd floor cannot fail the run on a small host: the
        # gate is reported but skipped below the core floor.
        assert code == 0
        assert "skipped" in capsys.readouterr().out

    def test_floor_gate_enforced_at_or_above_core_floor(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setattr("os.cpu_count", lambda: PARALLEL_MIN_CORES)
        out = tmp_path / "bench.json"
        code = main(
            [
                "--smoke",
                "--sections",
                "parallel",
                "--parallel-n",
                "2000",
                "--parallel-reps",
                "48",
                "--parallel-jobs",
                "2",
                "--parallel-floor",
                "0.0001",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert "parallel floor check" in capsys.readouterr().out
