"""Tests for the simulation-backend micro-benchmark."""

import json

import pytest

from repro.engine.fast import compile_table
from repro.experiments.bench import (
    REFERENCE_MAX_N,
    ChurnProtocol,
    EnsembleBenchPoint,
    ensemble_floor_rate,
    ensemble_speedups,
    floor_rate,
    render_ensemble_points,
    run_bench,
    run_ensemble_bench,
    speedups,
    workloads,
    write_json,
)


class TestChurnProtocol:
    def test_every_interaction_is_non_null(self):
        protocol = ChurnProtocol()
        for p in protocol.mobile_state_space():
            for q in protocol.mobile_state_space():
                assert protocol.transition(p, q) != (p, q)

    def test_even_modulus_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            ChurnProtocol(8)

    def test_compiles_for_the_fast_backend(self):
        assert compile_table(ChurnProtocol()) is not None


class TestRunBench:
    def test_smoke_run_produces_all_cells(self, tmp_path):
        # N = 12 exceeds the naming bound (8), so the spread start never
        # converges and every backend runs its whole budget.
        points = run_bench(sizes=(12,), seed=1, scale=0.02)
        assert len(points) == len(workloads()) * 3  # three backends
        assert all(p.interactions > 0 and p.seconds >= 0 for p in points)
        ratios = speedups(points)
        assert set(ratios) == set(workloads())
        for per_size in ratios.values():
            cell = per_size["12"]
            assert set(cell) == {"fast/reference", "counts/fast"}
            assert all(v > 0 for v in cell.values())

    def test_reference_backend_skipped_above_cap(self):
        n = REFERENCE_MAX_N + 1
        points = run_bench(sizes=(n,), seed=1, scale=0.002)
        backends = {p.backend for p in points}
        assert backends == {"fast", "counts"}
        # Only the counts/fast pair is reportable without a reference.
        ratios = speedups(points)
        for per_size in ratios.values():
            assert set(per_size[str(n)]) == {"counts/fast"}

    def test_floor_rate_reads_largest_naming_cell(self):
        points = run_bench(sizes=(6, 12), seed=1, scale=0.02)
        rate = floor_rate(points)
        expected = [
            p
            for p in points
            if p.workload == "naming"
            and p.backend == "counts"
            and p.n_mobile == 12
        ]
        assert rate == expected[0].rate
        assert floor_rate([]) is None

    def test_json_payload_round_trips(self, tmp_path):
        points = run_bench(sizes=(6,), seed=1, scale=0.02)
        out = tmp_path / "bench.json"
        write_json(points, str(out), seed=1, scale=0.02)
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "simulator"
        assert len(payload["points"]) == len(points)
        assert "speedup" in payload


class TestEnsembleBench:
    def test_smoke_run_produces_both_engines_per_cell(self):
        points = run_ensemble_bench(
            sizes=(12,), replicates=(4, 8), seed=1, scale=0.02
        )
        # counts and batch per (N, R) cell
        assert len(points) == 2 * 2
        assert {p.engine for p in points} == {"counts", "batch"}
        assert all(p.interactions > 0 and p.seconds >= 0 for p in points)
        assert all(p.runs_per_second > 0 for p in points)
        ratios = ensemble_speedups(points)
        assert set(ratios) == {"12"}
        assert set(ratios["12"]) == {"R=4", "R=8"}
        assert all(v > 0 for v in ratios["12"].values())

    def test_ensemble_floor_rate_reads_widest_batch_cell(self):
        def cell(engine, n, r, rate):
            return EnsembleBenchPoint(
                engine=engine,
                n_mobile=n,
                replicates=r,
                interactions=int(rate),
                non_null_interactions=0,
                seconds=1.0,
            )

        points = [
            cell("counts", 10, 4, 100.0),
            cell("batch", 10, 4, 300.0),
            cell("counts", 10, 8, 100.0),
            cell("batch", 10, 8, 700.0),
        ]
        # Most replicates wins (ties would break by population size).
        assert ensemble_floor_rate(points) == 700.0
        assert ensemble_floor_rate([points[0]]) is None
        assert ensemble_floor_rate([]) is None

    def test_render_marks_batch_speedup(self):
        points = run_ensemble_bench(
            sizes=(12,), replicates=(4,), seed=1, scale=0.02
        )
        table = render_ensemble_points(points)
        assert "ensemble throughput" in table
        assert "x vs counts" in table

    def test_json_payload_includes_ensemble_section(self, tmp_path):
        points = run_bench(sizes=(6,), seed=1, scale=0.02)
        ensemble = run_ensemble_bench(
            sizes=(12,), replicates=(4,), seed=1, scale=0.02
        )
        out = tmp_path / "bench.json"
        write_json(points, str(out), seed=1, scale=0.02, ensemble=ensemble)
        payload = json.loads(out.read_text())
        section = payload["ensemble"]
        assert section["workload"] == "naming"
        assert len(section["points"]) == len(ensemble)
        assert "speedup" in section
