"""Tests for the simulation-backend micro-benchmark."""

import json

import pytest

from repro.engine.fast import compile_table
from repro.experiments.bench import (
    REFERENCE_MAX_N,
    ChurnProtocol,
    floor_rate,
    run_bench,
    speedups,
    workloads,
    write_json,
)


class TestChurnProtocol:
    def test_every_interaction_is_non_null(self):
        protocol = ChurnProtocol()
        for p in protocol.mobile_state_space():
            for q in protocol.mobile_state_space():
                assert protocol.transition(p, q) != (p, q)

    def test_even_modulus_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            ChurnProtocol(8)

    def test_compiles_for_the_fast_backend(self):
        assert compile_table(ChurnProtocol()) is not None


class TestRunBench:
    def test_smoke_run_produces_all_cells(self, tmp_path):
        # N = 12 exceeds the naming bound (8), so the spread start never
        # converges and every backend runs its whole budget.
        points = run_bench(sizes=(12,), seed=1, scale=0.02)
        assert len(points) == len(workloads()) * 3  # three backends
        assert all(p.interactions > 0 and p.seconds >= 0 for p in points)
        ratios = speedups(points)
        assert set(ratios) == set(workloads())
        for per_size in ratios.values():
            cell = per_size["12"]
            assert set(cell) == {"fast/reference", "counts/fast"}
            assert all(v > 0 for v in cell.values())

    def test_reference_backend_skipped_above_cap(self):
        n = REFERENCE_MAX_N + 1
        points = run_bench(sizes=(n,), seed=1, scale=0.002)
        backends = {p.backend for p in points}
        assert backends == {"fast", "counts"}
        # Only the counts/fast pair is reportable without a reference.
        ratios = speedups(points)
        for per_size in ratios.values():
            assert set(per_size[str(n)]) == {"counts/fast"}

    def test_floor_rate_reads_largest_naming_cell(self):
        points = run_bench(sizes=(6, 12), seed=1, scale=0.02)
        rate = floor_rate(points)
        expected = [
            p
            for p in points
            if p.workload == "naming"
            and p.backend == "counts"
            and p.n_mobile == 12
        ]
        assert rate == expected[0].rate
        assert floor_rate([]) is None

    def test_json_payload_round_trips(self, tmp_path):
        points = run_bench(sizes=(6,), seed=1, scale=0.02)
        out = tmp_path / "bench.json"
        write_json(points, str(out), seed=1, scale=0.02)
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "simulator"
        assert len(payload["points"]) == len(points)
        assert "speedup" in payload
