"""Tests for the Table 1 regeneration harness - the headline experiment."""

import pytest

from repro.core.spec import (
    Fairness,
    LeaderKind,
    MobileInit,
    ModelSpec,
    Symmetry,
    table1_cell,
)
from repro.experiments.table1 import (
    Table1Row,
    _simulation_sizes,
    render_rows,
    run_table1,
)


@pytest.fixture(scope="module")
def rows():
    # bound=4 keeps the whole regeneration fast while exercising N = P
    # for every protocol family.
    return run_table1(bound=4, seed=11, budget=300_000, samples=2)


class TestRegeneration:
    def test_all_cells_present(self, rows):
        assert len(rows) == 24

    def test_every_cell_matches_the_paper(self, rows):
        mismatches = [r for r in rows if not r.match]
        details = [(r.spec.describe(), r.evidence) for r in mismatches]
        assert not mismatches, details

    def test_feasible_cells_report_state_counts(self, rows):
        for row in rows:
            if row.expected.feasible:
                assert row.measured_states == row.expected.optimal_states(4)
            else:
                assert row.measured_states is None

    def test_evidence_collected_for_every_cell(self, rows):
        assert all(row.evidence for row in rows)

    def test_exact_checks_ran_for_feasible_cells(self, rows):
        for row in rows:
            if row.expected.feasible:
                assert any("exact" in item for item in row.evidence)


class TestRendering:
    def test_render_contains_all_cells(self, rows):
        text = render_rows(rows, bound=4)
        assert text.count("OK") == 24
        assert "asymmetric" in text and "symmetric" in text

    def test_render_marks_mismatches(self):
        spec = ModelSpec(
            Fairness.WEAK,
            Symmetry.SYMMETRIC,
            LeaderKind.NONE,
            MobileInit.ARBITRARY,
        )
        fake = Table1Row(
            spec=spec,
            expected=table1_cell(spec),
            measured_feasible=True,
            measured_states=None,
            match=False,
        )
        assert "FAIL" in render_rows([fake], bound=4)


class TestSimulationSizes:
    def make_spec(self, fairness, symmetry, leader):
        return ModelSpec(fairness, symmetry, leader, MobileInit.ARBITRARY)

    def test_prop13_cells_skip_n_2(self):
        spec = self.make_spec(
            Fairness.GLOBAL, Symmetry.SYMMETRIC, LeaderKind.NONE
        )
        assert all(n > 2 for n in _simulation_sizes(spec, 6))

    def test_protocol3_cells_skip_n_p_for_large_bounds(self):
        spec = self.make_spec(
            Fairness.GLOBAL, Symmetry.SYMMETRIC, LeaderKind.INITIALIZED
        )
        assert 6 not in _simulation_sizes(spec, 6)
        assert 3 in _simulation_sizes(spec, 3)

    def test_asymmetric_cells_include_full_range(self):
        spec = self.make_spec(
            Fairness.WEAK, Symmetry.ASYMMETRIC, LeaderKind.NONE
        )
        sizes = _simulation_sizes(spec, 5)
        assert 2 in sizes and 5 in sizes
