"""Tests for the exhaustive lower-bound experiment (quick battery only;
the 19683-protocol P=3 sweep runs in the benchmark suite)."""

import pytest

from repro.experiments.lower_bounds import default_checks, render_checks


@pytest.fixture(scope="module")
def checks():
    return default_checks(include_p3=False)


class TestDefaultChecks:
    def test_every_claim_verified(self, checks):
        failing = [c.claim for c in checks if not c.matches]
        assert not failing, failing

    def test_symmetric_claims_find_no_solvers(self, checks):
        for check in checks:
            if "ASYMMETRIC" not in check.claim:
                assert not check.result.any_solves, check.claim

    def test_asymmetric_contrast_finds_solvers(self, checks):
        contrast = [c for c in checks if "ASYMMETRIC" in c.claim]
        assert contrast and contrast[0].result.any_solves

    def test_totals_match_family_sizes(self, checks):
        by_claim = {c.claim: c.result.total for c in checks}
        p2_sym = [v for k, v in by_claim.items() if "Prop. 2, P=2" in k]
        assert all(v == 16 for v in p2_sym)

    def test_render(self, checks):
        text = render_checks(checks)
        assert "protocols" in text and "verdict" in text
        assert "FAIL" not in text
