"""Tests for the text-table renderer."""

from repro.experiments.report import bullet_list, check_mark, render_table


class TestRenderTable:
    def test_headers_and_rows_aligned(self):
        text = render_table(("name", "value"), [("a", 1), ("bb", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "---" in lines[1]
        assert lines[2].startswith("a")
        # Columns align: "value" starts at the same offset everywhere.
        offset = lines[0].index("value")
        assert lines[2][offset:].startswith("1")

    def test_title_rendered_with_rule(self):
        text = render_table(("x",), [(1,)], title="my table")
        lines = text.splitlines()
        assert lines[0] == "my table"
        assert lines[1] == "=" * len("my table")

    def test_wide_cells_stretch_column(self):
        text = render_table(("h",), [("very long cell",)])
        assert "very long cell" in text

    def test_non_string_values_coerced(self):
        text = render_table(("a", "b"), [(None, 3.5)])
        assert "None" in text and "3.5" in text


class TestHelpers:
    def test_bullet_list(self):
        text = bullet_list(["one", "two"])
        assert text == "  - one\n  - two"

    def test_check_mark(self):
        assert check_mark(True).strip() == "OK"
        assert check_mark(False) == "FAIL"
