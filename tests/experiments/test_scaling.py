"""Tests for the exact-verification scaling experiment."""

import pytest

from repro.experiments.scaling import (
    COUNTS_MAX_N,
    FAST_MAX_N,
    FLUID_MIN_N,
    LEAP_MAX_N,
    SIMULATION_SIZES,
    ScalePoint,
    SimulationScalePoint,
    render_points,
    render_simulation_points,
    run_scaling,
    run_simulation_scaling,
)


@pytest.fixture(scope="module")
def points():
    return run_scaling(max_quotient_n=5)


class TestScaling:
    def test_all_instances_verify(self, points):
        assert points and all(p.solves for p in points)

    def test_quotient_explores_fewer_nodes(self, points):
        by_key = {}
        for p in points:
            by_key.setdefault((p.protocol, p.n_mobile), {})[p.technique] = p
        compared = 0
        for techniques in by_key.values():
            labelled = techniques.get("global (labelled)")
            quotient = techniques.get("global (quotient)")
            if labelled and quotient:
                assert quotient.nodes <= labelled.nodes
                compared += 1
        assert compared >= 3

    def test_covers_the_simulation_unreachable_instance(self, points):
        protocol3_n5 = [
            p
            for p in points
            if p.protocol == "Protocol 3" and p.n_mobile == 5
        ]
        assert protocol3_n5 and protocol3_n5[0].solves

    def test_nodes_grow_with_population(self, points):
        prop13 = sorted(
            (
                p
                for p in points
                if p.protocol == "Prop. 13"
                and p.technique == "global (quotient)"
            ),
            key=lambda p: p.n_mobile,
        )
        sizes = [p.nodes for p in prop13]
        assert sizes == sorted(sizes)

    def test_render(self, points):
        text = render_points(points)
        assert "technique" in text
        assert "quotient" in text
        assert "FAILS" not in text


class TestParallelScaling:
    def test_parallel_jobs_match_serial_verdicts(self):
        serial = run_scaling(max_quotient_n=3)
        parallel = run_scaling(max_quotient_n=3, n_jobs=2)
        strip = lambda pts: [
            (p.protocol, p.n_mobile, p.technique, p.nodes, p.solves)
            for p in pts
        ]
        assert strip(parallel) == strip(serial)


class TestSimulationScaling:
    def test_small_sweep_measures_all_backends(self):
        points = run_simulation_scaling(max_n=10**4, seed=7)
        cells = {(p.backend, p.n_mobile) for p in points}
        assert cells == {
            ("fast", 10**3),
            ("counts", 10**3),
            ("leap", 10**3),
            ("fast", 10**4),
            ("counts", 10**4),
            ("leap", 10**4),
        }
        assert all(p.interactions > 0 for p in points)
        assert all(p.rate > 0 for p in points)

    def test_backend_ladder_caps(self):
        # FAST_MAX_N and COUNTS_MAX_N bound the exact backends,
        # LEAP_MAX_N bounds the agent-vector windowed backend; only the
        # counts-native fluid backend reaches the top sizes, which is
        # the point of the extended sweep.
        assert FAST_MAX_N < 10**6
        assert COUNTS_MAX_N < LEAP_MAX_N
        assert LEAP_MAX_N < max(SIMULATION_SIZES)
        assert FLUID_MIN_N <= LEAP_MAX_N
        assert max(SIMULATION_SIZES) == 10**10

    def test_fluid_cells_start_at_fluid_min_n(self):
        specs = {
            (p.backend, p.n_mobile)
            for p in run_simulation_scaling(
                max_n=FLUID_MIN_N, seed=7, backends=("fluid",)
            )
        }
        assert specs == {("fluid", FLUID_MIN_N)}

    def test_backend_filter_restricts_cells(self):
        points = run_simulation_scaling(
            max_n=10**4, seed=7, backends=("counts",)
        )
        assert {p.backend for p in points} == {"counts"}
        assert len(points) == 2

    def test_empty_sweep_below_smallest_size(self):
        assert run_simulation_scaling(max_n=10**2, seed=7) == []

    def test_render_simulation_table(self):
        points = run_simulation_scaling(max_n=10**3, seed=7)
        text = render_simulation_points(points)
        assert "backend" in text
        assert "counts" in text
        assert "fast" in text


class TestRenderEdgeCases:
    def test_simulation_rate_zero_duration(self):
        # A cell too fast for the clock must report rate 0.0, not raise
        # ZeroDivisionError (the JSON/table sentinel for "unmeasurable").
        point = SimulationScalePoint(
            backend="fluid",
            n_mobile=10**9,
            interactions=10**10,
            non_null_interactions=10**9,
            seconds=0.0,
        )
        assert point.rate == 0.0

    def test_render_simulation_points_empty(self):
        text = render_simulation_points([])
        assert "simulation scaling" in text

    def test_render_simulation_points_zero_duration_row(self):
        point = SimulationScalePoint(
            backend="leap",
            n_mobile=10**6,
            interactions=0,
            non_null_interactions=0,
            seconds=0.0,
        )
        text = render_simulation_points([point])
        assert "0 ms" in text
        assert "0/s" in text

    def test_render_points_empty(self):
        text = render_points([])
        assert "exact-verification scaling" in text

    def test_render_points_failure_verdict(self):
        point = ScalePoint(
            protocol="Prop. 13",
            n_mobile=3,
            bound=3,
            technique="global (quotient)",
            nodes=17,
            seconds=0.0,
            solves=False,
        )
        text = render_points([point])
        assert "FAILS" in text
