"""Tests for the exact-verification scaling experiment."""

import pytest

from repro.experiments.scaling import render_points, run_scaling


@pytest.fixture(scope="module")
def points():
    return run_scaling(max_quotient_n=5)


class TestScaling:
    def test_all_instances_verify(self, points):
        assert points and all(p.solves for p in points)

    def test_quotient_explores_fewer_nodes(self, points):
        by_key = {}
        for p in points:
            by_key.setdefault((p.protocol, p.n_mobile), {})[p.technique] = p
        compared = 0
        for techniques in by_key.values():
            labelled = techniques.get("global (labelled)")
            quotient = techniques.get("global (quotient)")
            if labelled and quotient:
                assert quotient.nodes <= labelled.nodes
                compared += 1
        assert compared >= 3

    def test_covers_the_simulation_unreachable_instance(self, points):
        protocol3_n5 = [
            p
            for p in points
            if p.protocol == "Protocol 3" and p.n_mobile == 5
        ]
        assert protocol3_n5 and protocol3_n5[0].solves

    def test_nodes_grow_with_population(self, points):
        prop13 = sorted(
            (
                p
                for p in points
                if p.protocol == "Prop. 13"
                and p.technique == "global (quotient)"
            ),
            key=lambda p: p.n_mobile,
        )
        sizes = [p.nodes for p in prop13]
        assert sizes == sorted(sizes)

    def test_render(self, points):
        text = render_points(points)
        assert "technique" in text
        assert "quotient" in text
        assert "FAILS" not in text


class TestParallelScaling:
    def test_parallel_jobs_match_serial_verdicts(self):
        serial = run_scaling(max_quotient_n=3)
        parallel = run_scaling(max_quotient_n=3, n_jobs=2)
        strip = lambda pts: [
            (p.protocol, p.n_mobile, p.technique, p.nodes, p.solves)
            for p in pts
        ]
        assert strip(parallel) == strip(serial)
