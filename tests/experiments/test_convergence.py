"""Tests for the convergence-cost experiment."""

import pytest

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.global_naming import GlobalNamingProtocol
from repro.errors import ConvergenceError
from repro.experiments.convergence import (
    main,
    measure,
    protocol_series,
    render_points,
    render_stats,
    run_convergence,
)


class TestMeasure:
    def test_sample_statistics_populated(self):
        point = measure(
            AsymmetricNamingProtocol(5),
            n_mobile=4,
            bound=5,
            seeds=range(5),
            budget=200_000,
        )
        assert point.summary.count == 5
        assert point.summary.minimum >= 0
        assert point.summary.maximum >= point.summary.minimum

    def test_budget_violation_raises(self):
        with pytest.raises(ConvergenceError):
            measure(
                AsymmetricNamingProtocol(6),
                n_mobile=6,
                bound=6,
                seeds=range(2),
                budget=2,  # impossible budget
            )

    def test_fast_backend_measures_identically(self):
        kwargs = dict(
            n_mobile=4, bound=5, seeds=range(5), budget=200_000
        )
        reference = measure(AsymmetricNamingProtocol(5), **kwargs)
        fast = measure(
            AsymmetricNamingProtocol(5), backend="fast", **kwargs
        )
        assert fast == reference

    def test_parallel_jobs_measure_identically(self):
        kwargs = dict(
            n_mobile=4, bound=5, seeds=range(4), budget=200_000
        )
        serial = measure(AsymmetricNamingProtocol(5), **kwargs)
        parallel = measure(
            AsymmetricNamingProtocol(5), n_jobs=2, **kwargs
        )
        assert parallel == serial


class TestSeries:
    def test_default_series_cover_all_positive_protocols(self):
        series = protocol_series(5)
        names = {protocol.display_name for protocol, _, _ in series}
        assert len(series) == 5
        assert any("asymmetric" in n for n in names)
        assert any("Protocol 2" in n for n in names)
        assert any("Protocol 3" in n for n in names)

    def test_prop13_sizes_exclude_two(self):
        series = dict(
            (type(p).__name__, sizes) for p, sizes, _ in protocol_series(5)
        )
        assert 2 not in series["SymmetricGlobalNamingProtocol"]

    def test_protocol3_excludes_full_population_for_big_bounds(self):
        series = {
            type(p).__name__: sizes for p, sizes, _ in protocol_series(6)
        }
        assert 6 not in series["GlobalNamingProtocol"]

    def test_protocol3_keeps_full_population_for_tiny_bounds(self):
        series = {
            type(p).__name__: sizes for p, sizes, _ in protocol_series(3)
        }
        assert 3 in series["GlobalNamingProtocol"]


class TestRunAndRender:
    def test_small_run_and_render(self):
        points = run_convergence(bound=4, runs=3, budget=2_000_000)
        assert points
        text = render_points(points)
        assert "protocol" in text and "median" in text
        # Larger populations should not be free: the max cost across the
        # run is positive.
        assert any(p.summary.maximum > 0 for p in points)

    def test_batch_backend_measures_all_seeds(self):
        """The lockstep default certifies every seed (a missed verdict
        would raise ConvergenceError inside measure)."""
        point = measure(
            AsymmetricNamingProtocol(5),
            n_mobile=4,
            bound=5,
            seeds=range(8),
            budget=200_000,
            backend="batch",
        )
        assert point.summary.count == 8

    def test_stats_attached_and_rendered(self):
        point = measure(
            AsymmetricNamingProtocol(5),
            n_mobile=4,
            bound=5,
            seeds=range(4),
            budget=200_000,
            backend="batch",
        )
        assert point.stats is not None
        assert point.stats.wall_seconds >= 0.0
        assert 0.0 <= point.stats.null_fraction <= 1.0
        text = render_stats([point])
        assert "ensemble performance per cell" in text
        assert "interactions/s" in text

    def test_stats_excluded_from_equality(self):
        kwargs = dict(n_mobile=4, bound=5, seeds=range(4), budget=200_000)
        a = measure(AsymmetricNamingProtocol(5), backend="batch", **kwargs)
        b = measure(AsymmetricNamingProtocol(5), backend="batch", **kwargs)
        assert a == b  # wall-clock stats differ, equality must not

    def test_verbose_cli_prints_stats(self, capsys):
        exit_code = main(
            ["--bound", "3", "--runs", "2", "--verbose"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "interactions to certified convergence" in out
        assert "ensemble performance per cell" in out

    def test_cost_grows_with_population(self):
        """Sanity of the shape: naming 6 agents costs more interactions
        than naming 2 (same protocol, same bound)."""
        small = measure(
            AsymmetricNamingProtocol(6), 2, 6, seeds=range(10),
            budget=500_000,
        )
        large = measure(
            AsymmetricNamingProtocol(6), 6, 6, seeds=range(10),
            budget=500_000,
        )
        assert large.summary.mean > small.summary.mean
