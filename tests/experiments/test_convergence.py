"""Tests for the convergence-cost experiment."""

import pytest

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.global_naming import GlobalNamingProtocol
from repro.errors import ConvergenceError
from repro.experiments.convergence import (
    measure,
    protocol_series,
    render_points,
    run_convergence,
)


class TestMeasure:
    def test_sample_statistics_populated(self):
        point = measure(
            AsymmetricNamingProtocol(5),
            n_mobile=4,
            bound=5,
            seeds=range(5),
            budget=200_000,
        )
        assert point.summary.count == 5
        assert point.summary.minimum >= 0
        assert point.summary.maximum >= point.summary.minimum

    def test_budget_violation_raises(self):
        with pytest.raises(ConvergenceError):
            measure(
                AsymmetricNamingProtocol(6),
                n_mobile=6,
                bound=6,
                seeds=range(2),
                budget=2,  # impossible budget
            )

    def test_fast_backend_measures_identically(self):
        kwargs = dict(
            n_mobile=4, bound=5, seeds=range(5), budget=200_000
        )
        reference = measure(AsymmetricNamingProtocol(5), **kwargs)
        fast = measure(
            AsymmetricNamingProtocol(5), backend="fast", **kwargs
        )
        assert fast == reference

    def test_parallel_jobs_measure_identically(self):
        kwargs = dict(
            n_mobile=4, bound=5, seeds=range(4), budget=200_000
        )
        serial = measure(AsymmetricNamingProtocol(5), **kwargs)
        parallel = measure(
            AsymmetricNamingProtocol(5), n_jobs=2, **kwargs
        )
        assert parallel == serial


class TestSeries:
    def test_default_series_cover_all_positive_protocols(self):
        series = protocol_series(5)
        names = {protocol.display_name for protocol, _, _ in series}
        assert len(series) == 5
        assert any("asymmetric" in n for n in names)
        assert any("Protocol 2" in n for n in names)
        assert any("Protocol 3" in n for n in names)

    def test_prop13_sizes_exclude_two(self):
        series = dict(
            (type(p).__name__, sizes) for p, sizes, _ in protocol_series(5)
        )
        assert 2 not in series["SymmetricGlobalNamingProtocol"]

    def test_protocol3_excludes_full_population_for_big_bounds(self):
        series = {
            type(p).__name__: sizes for p, sizes, _ in protocol_series(6)
        }
        assert 6 not in series["GlobalNamingProtocol"]

    def test_protocol3_keeps_full_population_for_tiny_bounds(self):
        series = {
            type(p).__name__: sizes for p, sizes, _ in protocol_series(3)
        }
        assert 3 in series["GlobalNamingProtocol"]


class TestRunAndRender:
    def test_small_run_and_render(self):
        points = run_convergence(bound=4, runs=3, budget=2_000_000)
        assert points
        text = render_points(points)
        assert "protocol" in text and "median" in text
        # Larger populations should not be free: the max cost across the
        # run is positive.
        assert any(p.summary.maximum > 0 for p in points)

    def test_cost_grows_with_population(self):
        """Sanity of the shape: naming 6 agents costs more interactions
        than naming 2 (same protocol, same bound)."""
        small = measure(
            AsymmetricNamingProtocol(6), 2, 6, seeds=range(10),
            budget=500_000,
        )
        large = measure(
            AsymmetricNamingProtocol(6), 6, 6, seeds=range(10),
            budget=500_000,
        )
        assert large.summary.mean > small.summary.mean
