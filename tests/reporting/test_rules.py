"""Tests for rule-table rendering."""

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.counting import CountingProtocol
from repro.core.leader_uniform import LeaderUniformNamingProtocol
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.reporting.rules import non_null_rules, render_rules


class TestNonNullRules:
    def test_asymmetric_rule_count(self):
        # One rule per state: (s, s) -> (s, s+1).
        rules = non_null_rules(AsymmetricNamingProtocol(5))
        assert len(rules) == 5
        assert ((2, 2), (2, 3)) in rules

    def test_prop13_rule_count(self):
        # P homonym rules + 2P rule-1 orientations + the (P, P) restart.
        rules = non_null_rules(SymmetricGlobalNamingProtocol(4))
        assert len(rules) == 4 + 2 * 4 + 1

    def test_rules_are_actually_non_null(self):
        protocol = CountingProtocol(3)
        for (p, q), (p2, q2) in non_null_rules(protocol):
            assert (p2, q2) != (p, q)
            assert protocol.transition(p, q) == (p2, q2)

    def test_leader_cap_respected(self):
        protocol = CountingProtocol(4)
        capped = non_null_rules(protocol, max_leader_states=2)
        full = non_null_rules(protocol, max_leader_states=None)
        assert len(capped) <= len(full)


class TestRenderRules:
    def test_render_mentions_metadata(self):
        text = render_rules(AsymmetricNamingProtocol(3))
        assert "asymmetric naming" in text
        assert "mobile states : 3" in text
        assert "(0, 0) -> (0, 1)" in text

    def test_render_leader_states_labelled(self):
        text = render_rules(LeaderUniformNamingProtocol(3))
        assert "L(counter=" in text

    def test_truncation(self):
        text = render_rules(SymmetricGlobalNamingProtocol(6), max_rules=3)
        assert "more" in text
