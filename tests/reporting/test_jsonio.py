"""Tests for JSON export of experiment results."""

import json

from repro.analysis.stats import summarize
from repro.core.spec import Fairness, LeaderKind, MobileInit, ModelSpec, Symmetry
from repro.experiments.table1 import Table1Row
from repro.core.spec import table1_cell
from repro.reporting.jsonio import dump, dumps, to_jsonable


class TestToJsonable:
    def test_dataclass_conversion(self):
        summary = summarize([1, 2, 3])
        data = to_jsonable(summary)
        assert data["count"] == 3
        assert data["mean"] == 2.0

    def test_enum_conversion(self):
        assert to_jsonable(Fairness.WEAK) == "weak"

    def test_nested_structures(self):
        spec = ModelSpec(
            Fairness.WEAK,
            Symmetry.SYMMETRIC,
            LeaderKind.NONE,
            MobileInit.ARBITRARY,
        )
        row = Table1Row(
            spec=spec,
            expected=table1_cell(spec),
            measured_feasible=False,
            measured_states=None,
            match=True,
            evidence=["adversary held symmetry"],
        )
        data = to_jsonable(row)
        assert data["spec"]["fairness"] == "weak"
        assert data["expected"]["feasible"] is False
        assert data["evidence"] == ["adversary held symmetry"]

    def test_sets_sorted(self):
        assert to_jsonable({3, 1, 2}) == [1, 2, 3]

    def test_unknown_objects_reprd(self):
        class Thing:
            def __repr__(self):
                return "<thing>"

        assert to_jsonable(Thing()) == "<thing>"

    def test_tuples_become_lists(self):
        assert to_jsonable((1, (2, 3))) == [1, [2, 3]]


class TestDumps:
    def test_round_trips_through_json(self):
        summary = summarize([4, 5, 6])
        parsed = json.loads(dumps(summary))
        assert parsed["median"] == 5

    def test_dump_writes_file(self, tmp_path):
        path = dump({"a": Fairness.GLOBAL}, tmp_path / "out.json")
        parsed = json.loads(path.read_text())
        assert parsed == {"a": "global"}
