"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    InfeasibleSpecError,
    ProtocolError,
    ReproError,
    SchedulerError,
    SimulationError,
    VerificationError,
)

ALL_ERRORS = [
    ConfigurationError,
    ConvergenceError,
    InfeasibleSpecError,
    ProtocolError,
    SchedulerError,
    SimulationError,
    VerificationError,
]


class TestHierarchy:
    @pytest.mark.parametrize("error_cls", ALL_ERRORS)
    def test_everything_derives_from_repro_error(self, error_cls):
        assert issubclass(error_cls, ReproError)

    def test_convergence_is_a_simulation_error(self):
        assert issubclass(ConvergenceError, SimulationError)

    def test_catch_all(self):
        with pytest.raises(ReproError):
            raise ProtocolError("x")


class TestPayloads:
    def test_infeasible_spec_carries_proposition(self):
        error = InfeasibleSpecError("nope", proposition="Proposition 1")
        assert error.proposition == "Proposition 1"
        assert "nope" in str(error)

    def test_infeasible_spec_defaults_empty(self):
        assert InfeasibleSpecError("x").proposition == ""

    def test_convergence_error_carries_interactions(self):
        error = ConvergenceError("timeout", interactions=123)
        assert error.interactions == 123

    def test_convergence_error_default(self):
        assert ConvergenceError("x").interactions == 0
