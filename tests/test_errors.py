"""Tests for the exception hierarchy."""

import pickle

import pytest

from repro.errors import (
    BackendFallbackWarning,
    ConfigurationError,
    ConvergenceError,
    InfeasibleSpecError,
    ProtocolError,
    ReproError,
    SanitizerError,
    SchedulerError,
    SimulationError,
    VerificationError,
)

ALL_ERRORS = [
    ConfigurationError,
    ConvergenceError,
    InfeasibleSpecError,
    ProtocolError,
    SchedulerError,
    SimulationError,
    VerificationError,
]


class TestHierarchy:
    @pytest.mark.parametrize("error_cls", ALL_ERRORS)
    def test_everything_derives_from_repro_error(self, error_cls):
        assert issubclass(error_cls, ReproError)

    def test_convergence_is_a_simulation_error(self):
        assert issubclass(ConvergenceError, SimulationError)

    def test_catch_all(self):
        with pytest.raises(ReproError):
            raise ProtocolError("x")


class TestPayloads:
    def test_infeasible_spec_carries_proposition(self):
        error = InfeasibleSpecError("nope", proposition="Proposition 1")
        assert error.proposition == "Proposition 1"
        assert "nope" in str(error)

    def test_infeasible_spec_defaults_empty(self):
        assert InfeasibleSpecError("x").proposition == ""

    def test_convergence_error_carries_interactions(self):
        error = ConvergenceError("timeout", interactions=123)
        assert error.interactions == 123

    def test_convergence_error_default(self):
        assert ConvergenceError("x").interactions == 0

    def test_sanitizer_error_carries_context(self):
        error = SanitizerError(
            "bad", backend="counts", invariant="negative-count",
            interaction=7,
        )
        assert error.backend == "counts"
        assert error.invariant == "negative-count"
        assert error.interaction == 7

    def test_fallback_warning_carries_context(self):
        warning = BackendFallbackWarning(
            "leap backend falling back to the counts simulator: why",
            backend="leap",
            delegate="counts",
            reason="why",
        )
        assert warning.backend == "leap"
        assert warning.delegate == "counts"
        assert warning.reason == "why"
        assert warning.reason in str(warning)


class TestPickling:
    """Keyword attributes must survive pickling: the default
    ``Exception.__reduce__`` only preserves ``args``, which silently
    blanked ``backend``/``invariant`` when an error crossed the
    ``run_ensemble(n_jobs > 1)`` worker-process boundary."""

    def test_sanitizer_error_roundtrips(self):
        error = SanitizerError(
            "bad", backend="batch", invariant="population-size",
            interaction=42,
        )
        clone = pickle.loads(pickle.dumps(error))
        assert str(clone) == str(error)
        assert clone.backend == "batch"
        assert clone.invariant == "population-size"
        assert clone.interaction == 42

    def test_convergence_error_roundtrips(self):
        error = ConvergenceError("timeout", interactions=9)
        clone = pickle.loads(pickle.dumps(error))
        assert str(clone) == str(error)
        assert clone.interactions == 9

    def test_infeasible_spec_roundtrips(self):
        error = InfeasibleSpecError("nope", proposition="Proposition 1")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.proposition == "Proposition 1"
