"""Tests for interaction-graph-restricted scheduling - and the
demonstration that the paper's complete-graph assumption is load-bearing."""

import pytest

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.simulator import Simulator
from repro.errors import SchedulerError
from repro.schedulers.graph_restricted import (
    GraphRestrictedScheduler,
    complete_edges,
    path_edges,
    star_edges,
    validate_edges,
)


class TestEdgeBuilders:
    def test_complete_edges_count(self):
        pop = Population(5)
        assert len(complete_edges(pop)) == 10

    def test_path_edges_chain(self):
        pop = Population(4)
        assert path_edges(pop) == [(0, 1), (1, 2), (2, 3)]

    def test_star_edges_center(self):
        pop = Population(4)
        edges = star_edges(pop, center=2)
        assert len(edges) == 3
        assert all(2 in e for e in edges)

    def test_path_includes_leader(self):
        pop = Population(2, has_leader=True)
        assert path_edges(pop) == [(0, 1), (1, 2)]


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(SchedulerError, match="no edges"):
            validate_edges(Population(3), [])

    def test_rejects_self_loop(self):
        with pytest.raises(SchedulerError, match="self-loop"):
            validate_edges(Population(3), [(0, 0), (0, 1), (1, 2)])

    def test_rejects_disconnected(self):
        pop = Population(4)
        with pytest.raises(SchedulerError, match="disconnected"):
            validate_edges(pop, [(0, 1), (2, 3)])

    def test_accepts_connected(self):
        validate_edges(Population(4), [(0, 1), (1, 2), (2, 3)])

    def test_rejects_unknown_agent(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            validate_edges(Population(2), [(0, 7)])


class TestScheduling:
    def test_only_graph_edges_scheduled(self):
        pop = Population(4)
        edges = path_edges(pop)
        scheduler = GraphRestrictedScheduler(pop, edges, seed=1)
        config = Configuration.uniform(pop, 0)
        allowed = {frozenset(e) for e in edges}
        for _ in range(300):
            pair = scheduler.next_pair(config)
            assert frozenset(pair) in allowed

    def test_both_orientations_occur(self):
        pop = Population(3)
        scheduler = GraphRestrictedScheduler(pop, path_edges(pop), seed=2)
        config = Configuration.uniform(pop, 0)
        pairs = {scheduler.next_pair(config) for _ in range(200)}
        assert (0, 1) in pairs and (1, 0) in pairs

    def test_complete_graph_behaves_like_random_pairs(self):
        pop = Population(4)
        scheduler = GraphRestrictedScheduler(
            pop, complete_edges(pop), seed=3
        )
        config = Configuration.uniform(pop, 0)
        pairs = {
            frozenset(scheduler.next_pair(config)) for _ in range(500)
        }
        assert pairs == {frozenset(p) for p in pop.unordered_pairs()}


class TestCompleteGraphAssumption:
    """The reproduction finding: Proposition 12's protocol needs the
    complete interaction graph - homonyms that share no edge never merge."""

    def test_naming_fails_on_a_path(self):
        bound = 4
        protocol = AsymmetricNamingProtocol(bound)
        pop = Population(4)
        scheduler = GraphRestrictedScheduler(pop, path_edges(pop), seed=4)
        simulator = Simulator(protocol, pop, scheduler, NamingProblem())
        # Homonyms at the two ends of the path: (1, 0, 2, 1).  Agents 0
        # and 3 share no edge; all adjacent pairs are distinct, so every
        # edge meeting is null: the duplicate survives forever.
        start = Configuration.from_states(pop, (1, 0, 2, 1))
        result = simulator.run(start, max_interactions=50_000)
        assert not result.converged
        assert result.final_configuration == start  # totally silent

    def test_naming_succeeds_on_the_complete_graph(self):
        bound = 4
        protocol = AsymmetricNamingProtocol(bound)
        pop = Population(4)
        scheduler = GraphRestrictedScheduler(
            pop, complete_edges(pop), seed=4
        )
        simulator = Simulator(protocol, pop, scheduler, NamingProblem())
        start = Configuration.from_states(pop, (1, 0, 2, 1))
        result = simulator.run(start, max_interactions=100_000)
        assert result.converged

    def test_star_graph_still_can_fail(self):
        """Even a connected star fails: leaves never meet each other."""
        bound = 5
        protocol = AsymmetricNamingProtocol(bound)
        pop = Population(4)
        scheduler = GraphRestrictedScheduler(
            pop, star_edges(pop, center=0), seed=5
        )
        simulator = Simulator(protocol, pop, scheduler, NamingProblem())
        # Duplicate names on two leaves, all distinct from the hub.
        start = Configuration.from_states(pop, (0, 3, 3, 2))
        result = simulator.run(start, max_interactions=50_000)
        assert not result.converged
