"""Tests for the matching-phase scheduler (Proposition 1's adversary)."""

from itertools import combinations

import pytest

from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.simulator import Simulator
from repro.schedulers.matching import MatchingScheduler, round_robin_matchings


class TestRoundRobinMatchings:
    @pytest.mark.parametrize("n", [2, 4, 6, 8, 10])
    def test_even_one_factorization(self, n):
        rounds = round_robin_matchings(n)
        assert len(rounds) == n - 1
        seen = set()
        for matching in rounds:
            assert len(matching) == n // 2
            flat = [a for pair in matching for a in pair]
            assert len(set(flat)) == n  # perfect matching: disjoint pairs
            seen.update(map(frozenset, matching))
        assert seen == {frozenset(p) for p in combinations(range(n), 2)}

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_odd_near_perfect_matchings(self, n):
        rounds = round_robin_matchings(n)
        assert len(rounds) == n
        seen = set()
        for matching in rounds:
            assert len(matching) == (n - 1) // 2
            flat = [a for pair in matching for a in pair]
            assert len(set(flat)) == len(flat)
            seen.update(map(frozenset, matching))
        assert seen == {frozenset(p) for p in combinations(range(n), 2)}

    def test_tiny_populations(self):
        assert round_robin_matchings(1) == []
        assert round_robin_matchings(2) == [[(0, 1)]]


class TestMatchingScheduler:
    def test_covers_all_pairs_per_rotation(self):
        pop = Population(6)
        scheduler = MatchingScheduler(pop)
        config = Configuration.uniform(pop, 0)
        rotation = 15  # C(6, 2)
        pairs = {
            frozenset(scheduler.next_pair(config)) for _ in range(rotation)
        }
        assert pairs == {frozenset(p) for p in pop.unordered_pairs()}

    def test_orientation_flips_across_rotations(self):
        pop = Population(4)
        scheduler = MatchingScheduler(pop)
        config = Configuration.uniform(pop, 0)
        first = [scheduler.next_pair(config) for _ in range(6)]
        second = [scheduler.next_pair(config) for _ in range(6)]
        assert [tuple(reversed(p)) for p in first] == second

    def test_reset(self):
        pop = Population(6)
        scheduler = MatchingScheduler(pop)
        config = Configuration.uniform(pop, 0)
        first = [scheduler.next_pair(config) for _ in range(10)]
        scheduler.reset()
        again = [scheduler.next_pair(config) for _ in range(10)]
        assert first == again

    def test_proposition1_symmetry_preservation(self):
        """The headline property: any symmetric protocol on an even,
        uniformly initialized, leaderless population stays perfectly
        symmetric at every phase boundary, forever."""
        n = 6
        protocol = SymmetricGlobalNamingProtocol(n)
        pop = Population(n)
        scheduler = MatchingScheduler(pop)
        config = Configuration.uniform(pop, 1)
        phase_length = n // 2
        for _ in range(200):  # 200 phases
            for _ in range(phase_length):
                x, y = scheduler.next_pair(config)
                outcome = protocol.transition(
                    config.state_of(x), config.state_of(y)
                )
                config = config.apply(x, y, outcome)
            assert len(set(config.mobile_states)) == 1

    def test_proposition1_no_convergence_in_simulation(self):
        n = 4
        protocol = SymmetricGlobalNamingProtocol(n)
        pop = Population(n)
        scheduler = MatchingScheduler(pop)
        simulator = Simulator(protocol, pop, scheduler, NamingProblem())
        result = simulator.run(
            Configuration.uniform(pop, 1), max_interactions=20_000
        )
        assert not result.converged
