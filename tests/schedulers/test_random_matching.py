"""Tests for the random-matching scheduler."""

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.simulator import Simulator
from repro.schedulers.base import FairnessMonitor
from repro.schedulers.random_matching import RandomMatchingScheduler


class TestPhases:
    def test_each_phase_is_disjoint(self):
        pop = Population(8)
        scheduler = RandomMatchingScheduler(pop, seed=1)
        config = Configuration.uniform(pop, 0)
        for _ in range(50):
            seen = set()
            for _ in range(scheduler.phase_length):
                x, y = scheduler.next_pair(config)
                assert x not in seen and y not in seen
                seen.update((x, y))

    def test_odd_population_rests_one_agent(self):
        pop = Population(5)
        scheduler = RandomMatchingScheduler(pop, seed=2)
        config = Configuration.uniform(pop, 0)
        assert scheduler.phase_length == 2
        participants = set()
        for _ in range(2):
            participants.update(scheduler.next_pair(config))
        assert len(participants) == 4

    def test_empirically_weakly_fair(self):
        pop = Population(6)
        scheduler = RandomMatchingScheduler(pop, seed=3)
        config = Configuration.uniform(pop, 0)
        monitor = FairnessMonitor(pop)
        for _ in range(3000):
            monitor.observe(*scheduler.next_pair(config))
        assert monitor.rounds_completed >= 10

    def test_deterministic_per_seed(self):
        pop = Population(6)
        config = Configuration.uniform(pop, 0)
        a = [
            RandomMatchingScheduler(pop, seed=9).next_pair(config)
            for _ in range(1)
        ]
        b = [
            RandomMatchingScheduler(pop, seed=9).next_pair(config)
            for _ in range(1)
        ]
        assert a == b

    def test_reset_redraws(self):
        pop = Population(4)
        scheduler = RandomMatchingScheduler(pop, seed=1)
        config = Configuration.uniform(pop, 0)
        scheduler.next_pair(config)
        scheduler.reset()
        # After reset the scheduler redraws a fresh phase without error.
        scheduler.next_pair(config)


class TestSymmetryPreservation:
    def test_randomness_does_not_rescue_symmetric_protocols(self):
        """The punchline: random *matchings* still preserve symmetry on an
        even, uniformly started population - Proposition 1 is about round
        structure, not determinism."""
        n = 6
        protocol = SymmetricGlobalNamingProtocol(n)
        pop = Population(n)
        scheduler = RandomMatchingScheduler(pop, seed=4)
        simulator = Simulator(protocol, pop, scheduler, NamingProblem())
        budget = 60_000 - 60_000 % (n // 2)
        result = simulator.run(Configuration.uniform(pop, 1), budget)
        assert not result.converged
        assert len(set(result.final_configuration.mobile_states)) == 1

    def test_asymmetric_protocol_converges_anyway(self):
        n = 6
        protocol = AsymmetricNamingProtocol(n)
        pop = Population(n)
        scheduler = RandomMatchingScheduler(pop, seed=5)
        simulator = Simulator(protocol, pop, scheduler, NamingProblem())
        result = simulator.run(
            Configuration.uniform(pop, 0), max_interactions=100_000
        )
        assert result.converged
