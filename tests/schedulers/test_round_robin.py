"""Tests for the deterministic weakly fair schedulers."""

from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.schedulers.base import FairnessMonitor
from repro.schedulers.round_robin import (
    InterleavedRoundRobinScheduler,
    RoundRobinScheduler,
)


def drive(scheduler, population, steps):
    config = Configuration.uniform(population, 0)
    return [scheduler.next_pair(config) for _ in range(steps)]


class TestRoundRobinScheduler:
    def test_cycle_covers_all_ordered_pairs_exactly_once(self):
        pop = Population(4)
        scheduler = RoundRobinScheduler(pop)
        pairs = drive(scheduler, pop, scheduler.cycle_length)
        assert len(set(pairs)) == 12
        assert sorted(pairs) == sorted(pop.ordered_pairs())

    def test_cycle_repeats(self):
        pop = Population(3)
        scheduler = RoundRobinScheduler(pop)
        first = drive(scheduler, pop, scheduler.cycle_length)
        second = drive(scheduler, pop, scheduler.cycle_length)
        assert first == second

    def test_weakly_fair_by_monitor(self):
        pop = Population(5)
        scheduler = RoundRobinScheduler(pop)
        monitor = FairnessMonitor(pop)
        for x, y in drive(scheduler, pop, 3 * scheduler.cycle_length):
            monitor.observe(x, y)
        assert monitor.rounds_completed >= 3

    def test_shuffle_keeps_coverage(self):
        pop = Population(4)
        scheduler = RoundRobinScheduler(pop, seed=1, shuffle_each_cycle=True)
        pairs = drive(scheduler, pop, scheduler.cycle_length)
        assert sorted(pairs) == sorted(pop.ordered_pairs())

    def test_shuffle_changes_order_across_cycles(self):
        pop = Population(5)
        scheduler = RoundRobinScheduler(pop, seed=1, shuffle_each_cycle=True)
        first = drive(scheduler, pop, scheduler.cycle_length)
        second = drive(scheduler, pop, scheduler.cycle_length)
        assert sorted(first) == sorted(second)
        assert first != second

    def test_reset_restarts_cycle(self):
        pop = Population(3)
        scheduler = RoundRobinScheduler(pop)
        first = drive(scheduler, pop, 3)
        scheduler.reset()
        again = drive(scheduler, pop, 3)
        assert first == again

    def test_includes_leader(self):
        from repro.core.counting import CountingLeaderState

        pop = Population(2, has_leader=True)
        scheduler = RoundRobinScheduler(pop)
        config = Configuration.from_states(
            pop, (0, 0), CountingLeaderState(0, 0)
        )
        pairs = [
            scheduler.next_pair(config)
            for _ in range(scheduler.cycle_length)
        ]
        assert any(pop.leader in pair for pair in pairs)


class TestInterleavedRoundRobin:
    def test_half_cycle_length(self):
        pop = Population(4)
        scheduler = InterleavedRoundRobinScheduler(pop)
        pairs = drive(scheduler, pop, 6)
        assert len({frozenset(p) for p in pairs}) == 6

    def test_orientation_flips_between_cycles(self):
        pop = Population(3)
        scheduler = InterleavedRoundRobinScheduler(pop)
        first = drive(scheduler, pop, 3)
        second = drive(scheduler, pop, 3)
        assert [tuple(reversed(p)) for p in first] == second

    def test_reset(self):
        pop = Population(3)
        scheduler = InterleavedRoundRobinScheduler(pop)
        first = drive(scheduler, pop, 5)
        scheduler.reset()
        assert drive(scheduler, pop, 5) == first

    def test_both_orientations_occur_eventually(self):
        pop = Population(3)
        scheduler = InterleavedRoundRobinScheduler(pop)
        pairs = drive(scheduler, pop, 12)
        assert (0, 1) in pairs and (1, 0) in pairs
