"""Tests for the randomized schedulers."""

from collections import Counter

import pytest

from repro.core.counting import CountingLeaderState
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.schedulers.base import FairnessMonitor
from repro.schedulers.random_pair import (
    LeaderBiasedScheduler,
    RandomPairScheduler,
)


def drive(scheduler, population, steps, config=None):
    if config is None:
        config = Configuration.uniform(population, 0)
    return [scheduler.next_pair(config) for _ in range(steps)]


class TestRandomPairScheduler:
    def test_pairs_are_valid(self):
        pop = Population(5)
        pairs = drive(RandomPairScheduler(pop, seed=1), pop, 500)
        for x, y in pairs:
            assert x != y
            assert 0 <= x < 5 and 0 <= y < 5

    def test_deterministic_given_seed(self):
        pop = Population(5)
        a = drive(RandomPairScheduler(pop, seed=7), pop, 100)
        b = drive(RandomPairScheduler(pop, seed=7), pop, 100)
        assert a == b

    def test_different_seeds_differ(self):
        pop = Population(5)
        a = drive(RandomPairScheduler(pop, seed=1), pop, 100)
        b = drive(RandomPairScheduler(pop, seed=2), pop, 100)
        assert a != b

    def test_empirically_weakly_fair(self):
        pop = Population(4)
        scheduler = RandomPairScheduler(pop, seed=3)
        monitor = FairnessMonitor(pop)
        for x, y in drive(scheduler, pop, 2000):
            monitor.observe(x, y)
        assert monitor.rounds_completed >= 10

    def test_roughly_uniform_over_ordered_pairs(self):
        pop = Population(3)
        counts = Counter(drive(RandomPairScheduler(pop, seed=5), pop, 6000))
        assert len(counts) == 6
        for count in counts.values():
            assert 800 <= count <= 1200  # expectation 1000

    def test_declares_both_fairness_flags(self):
        scheduler = RandomPairScheduler(Population(2), seed=0)
        assert scheduler.weakly_fair and scheduler.globally_fair


class TestLeaderBiasedScheduler:
    def make(self, bias=0.5, n=4, seed=0):
        pop = Population(n, has_leader=True)
        return pop, LeaderBiasedScheduler(pop, seed=seed, leader_bias=bias)

    def test_requires_leader(self):
        with pytest.raises(ValueError, match="needs a leader"):
            LeaderBiasedScheduler(Population(3), seed=0)

    def test_rejects_degenerate_bias(self):
        pop = Population(3, has_leader=True)
        for bias in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError, match="leader_bias"):
                LeaderBiasedScheduler(pop, seed=0, leader_bias=bias)

    def test_bias_controls_leader_frequency(self):
        pop, scheduler = self.make(bias=0.9, seed=2)
        config = Configuration.from_states(
            pop, (0,) * 4, CountingLeaderState(0, 0)
        )
        pairs = [scheduler.next_pair(config) for _ in range(4000)]
        with_leader = sum(1 for p in pairs if pop.leader in p)
        assert with_leader / len(pairs) > 0.8

    def test_low_bias_mostly_mobile(self):
        pop, scheduler = self.make(bias=0.1, seed=2)
        config = Configuration.from_states(
            pop, (0,) * 4, CountingLeaderState(0, 0)
        )
        pairs = [scheduler.next_pair(config) for _ in range(4000)]
        with_leader = sum(1 for p in pairs if pop.leader in p)
        assert with_leader / len(pairs) < 0.2

    def test_single_mobile_agent_always_meets_leader(self):
        pop = Population(1, has_leader=True)
        scheduler = LeaderBiasedScheduler(pop, seed=0, leader_bias=0.5)
        config = Configuration.from_states(
            pop, (0,), CountingLeaderState(0, 0)
        )
        for _ in range(50):
            pair = scheduler.next_pair(config)
            assert pop.leader in pair

    def test_leader_takes_both_roles(self):
        pop, scheduler = self.make(bias=0.9, seed=4)
        config = Configuration.from_states(
            pop, (0,) * 4, CountingLeaderState(0, 0)
        )
        pairs = [scheduler.next_pair(config) for _ in range(500)]
        assert any(p[0] == pop.leader for p in pairs)
        assert any(p[1] == pop.leader for p in pairs)
