"""Tests for the adversarial schedulers."""

import pytest

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.selfstab_naming import SelfStabilizingNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.simulator import Simulator
from repro.schedulers.adversarial import (
    EventuallyFairScheduler,
    FixedSequenceScheduler,
    HomonymPreservingScheduler,
)
from repro.schedulers.base import FairnessMonitor
from repro.schedulers.random_pair import RandomPairScheduler
from repro.schedulers.round_robin import RoundRobinScheduler


class TestHomonymPreservingScheduler:
    def test_remains_weakly_fair(self):
        protocol = AsymmetricNamingProtocol(4)
        pop = Population(4)
        scheduler = HomonymPreservingScheduler(pop, protocol, seed=0)
        config = Configuration.uniform(pop, 0)
        monitor = FairnessMonitor(pop)
        for _ in range(240):
            x, y = scheduler.next_pair(config)
            monitor.observe(x, y)
            outcome = protocol.transition(
                config.state_of(x), config.state_of(y)
            )
            config = config.apply(x, y, outcome)
        assert monitor.rounds_completed >= 240 // pop.pair_count() - 1

    def test_weak_fairness_protocols_still_converge(self):
        protocol = SelfStabilizingNamingProtocol(4)
        pop = Population(4, has_leader=True)
        scheduler = HomonymPreservingScheduler(pop, protocol, seed=1)
        simulator = Simulator(protocol, pop, scheduler, NamingProblem())
        result = simulator.run(
            Configuration.from_states(
                pop, (2, 2, 2, 2), protocol.initial_leader_state()
            ),
            max_interactions=200_000,
        )
        assert result.converged

    def test_delays_more_than_round_robin(self):
        """The adversary should never beat round robin on the asymmetric
        protocol from a uniform start (it postpones homonym meetings)."""
        protocol = AsymmetricNamingProtocol(5)
        pop = Population(5)
        start = Configuration.uniform(pop, 0)

        fair = Simulator(
            protocol, pop, RoundRobinScheduler(pop), NamingProblem()
        ).run(start)
        adversary = Simulator(
            protocol,
            pop,
            HomonymPreservingScheduler(pop, protocol, seed=2),
            NamingProblem(),
        ).run(start)
        assert adversary.converged and fair.converged
        assert (
            adversary.convergence_interaction
            >= fair.convergence_interaction
        )

    def test_reset_restores_round(self):
        protocol = AsymmetricNamingProtocol(3)
        pop = Population(3)
        scheduler = HomonymPreservingScheduler(pop, protocol, seed=0)
        config = Configuration.uniform(pop, 0)
        first = [scheduler.next_pair(config) for _ in range(3)]
        scheduler.reset()
        again = [scheduler.next_pair(config) for _ in range(3)]
        assert first == again


class TestEventuallyFairScheduler:
    def make(self, prefix_length):
        pop = Population(4)
        protocol = AsymmetricNamingProtocol(4)
        # Unfair prefix: hammer one pair only.
        prefix = FixedSequenceScheduler(pop, [(0, 1)])
        suffix = RandomPairScheduler(pop, seed=5)
        return (
            pop,
            protocol,
            EventuallyFairScheduler(pop, prefix, suffix, prefix_length),
        )

    def test_prefix_then_suffix(self):
        pop, _, scheduler = self.make(prefix_length=10)
        config = Configuration.uniform(pop, 0)
        first = [scheduler.next_pair(config) for _ in range(10)]
        assert first == [(0, 1)] * 10
        later = {scheduler.next_pair(config) for _ in range(100)}
        assert len(later) > 1

    def test_self_stabilizing_protocol_survives_any_prefix(self):
        pop, protocol, scheduler = self.make(prefix_length=500)
        simulator = Simulator(protocol, pop, scheduler, NamingProblem())
        result = simulator.run(
            Configuration.uniform(pop, 0), max_interactions=100_000
        )
        assert result.converged

    def test_inherits_suffix_fairness_flags(self):
        _, _, scheduler = self.make(prefix_length=1)
        assert scheduler.weakly_fair and scheduler.globally_fair

    def test_rejects_negative_prefix(self):
        pop = Population(2)
        prefix = FixedSequenceScheduler(pop, [(0, 1)])
        suffix = RandomPairScheduler(pop, seed=0)
        with pytest.raises(ValueError):
            EventuallyFairScheduler(pop, prefix, suffix, -1)

    def test_reset_replays_prefix(self):
        pop, _, scheduler = self.make(prefix_length=3)
        config = Configuration.uniform(pop, 0)
        for _ in range(5):
            scheduler.next_pair(config)
        scheduler.reset()
        assert scheduler.next_pair(config) == (0, 1)


class TestFixedSequenceScheduler:
    def test_replays_and_wraps(self):
        pop = Population(3)
        seq = [(0, 1), (1, 2), (2, 0)]
        scheduler = FixedSequenceScheduler(pop, seq)
        config = Configuration.uniform(pop, 0)
        produced = [scheduler.next_pair(config) for _ in range(6)]
        assert produced == seq + seq

    def test_weak_fairness_detection(self):
        pop = Population(3)
        full = FixedSequenceScheduler(pop, [(0, 1), (1, 2), (2, 0)])
        partial = FixedSequenceScheduler(pop, [(0, 1), (1, 2)])
        assert full.weakly_fair
        assert not partial.weakly_fair

    def test_rejects_empty_sequence(self):
        with pytest.raises(ValueError):
            FixedSequenceScheduler(Population(2), [])

    def test_rejects_self_pairs(self):
        with pytest.raises(ValueError):
            FixedSequenceScheduler(Population(2), [(1, 1)])

    def test_rejects_unknown_agents(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            FixedSequenceScheduler(Population(2), [(0, 7)])
