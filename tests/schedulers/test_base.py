"""Tests for the scheduler base class and the fairness monitor."""

import pytest

from repro.engine.population import Population
from repro.errors import SchedulerError
from repro.schedulers.base import FairnessMonitor
from repro.schedulers.random_pair import RandomPairScheduler


class TestSchedulerConstruction:
    def test_rejects_singleton_population(self):
        with pytest.raises(SchedulerError):
            RandomPairScheduler(Population(1), seed=0)

    def test_leader_counts_toward_minimum(self):
        # One mobile agent plus a leader is schedulable.
        RandomPairScheduler(Population(1, has_leader=True), seed=0)

    def test_repr_mentions_display_name(self):
        scheduler = RandomPairScheduler(Population(2), seed=0)
        assert "uniform random pairs" in repr(scheduler)


class TestFairnessMonitor:
    def test_round_completes_when_all_pairs_met(self):
        pop = Population(3)
        monitor = FairnessMonitor(pop)
        assert monitor.rounds_completed == 0
        monitor.observe(0, 1)
        monitor.observe(1, 2)
        assert monitor.rounds_completed == 0
        monitor.observe(2, 0)
        assert monitor.rounds_completed == 1

    def test_order_is_ignored(self):
        pop = Population(2)
        monitor = FairnessMonitor(pop)
        monitor.observe(1, 0)
        assert monitor.rounds_completed == 1

    def test_pending_pairs_shrink(self):
        pop = Population(3)
        monitor = FairnessMonitor(pop)
        assert len(monitor.pending_pairs) == 3
        monitor.observe(0, 1)
        assert len(monitor.pending_pairs) == 2
        assert frozenset((0, 1)) not in monitor.pending_pairs

    def test_pending_resets_each_round(self):
        pop = Population(2)
        monitor = FairnessMonitor(pop)
        monitor.observe(0, 1)
        assert len(monitor.pending_pairs) == 1  # new round starts full

    def test_duplicate_observations_do_not_complete_round(self):
        pop = Population(3)
        monitor = FairnessMonitor(pop)
        for _ in range(10):
            monitor.observe(0, 1)
        assert monitor.rounds_completed == 0

    def test_includes_leader_pairs(self):
        pop = Population(2, has_leader=True)
        monitor = FairnessMonitor(pop)
        assert len(monitor.pending_pairs) == 3
