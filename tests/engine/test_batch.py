"""Tests for the batched ensemble backend (:mod:`repro.engine.batch`).

The lockstep kernel is *distribution-exact* but not stream-identical to
the per-run backends (it consumes a different randomness stream), so the
differential tests here compare per-seed verdicts exactly, bound
per-seed interaction counts within the documented order-of-magnitude
tolerance, and compare convergence-time *distributions* with a KS-style
check at N = 1000 - mirroring ``tests/engine/test_counts.py``.  What is
bit-exact, and asserted exactly, is the batch's own reproducibility:
a replicate's result is a function of its seed alone, independent of
batch size, batch composition and process chunking.
"""

from __future__ import annotations

import pytest

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.engine.batch import BatchedEnsembleSimulator
from repro.engine.configuration import Configuration
from repro.engine.counts import CountSimulator
from repro.engine.fast import make_simulator
from repro.engine.population import Population
from repro.engine.problems import NamingProblem, Problem
from repro.engine.trace import Trace
from repro.errors import (
    BackendFallbackWarning,
    ConvergenceError,
    SimulationError,
)
from repro.schedulers.adversarial import HomonymPreservingScheduler
from repro.schedulers.random_pair import RandomPairScheduler
from tests.engine.ks import ks_bound, ks_statistic


def build(n, bound=8, seed=0, problem=True, **kwargs):
    """A batch simulator for the asymmetric naming protocol."""
    protocol = AsymmetricNamingProtocol(bound)
    population = Population(n)
    scheduler = RandomPairScheduler(population, seed=seed)
    simulator = BatchedEnsembleSimulator(
        protocol,
        population,
        scheduler,
        NamingProblem() if problem else None,
        **kwargs,
    )
    return protocol, population, simulator


def replicate_parts(population, seeds):
    """Schedulers and uniform initials for a replicate batch, built on
    the simulator's own population (per-run fallback delegates require
    scheduler/population identity)."""
    schedulers = [
        RandomPairScheduler(population, seed=seed) for seed in seeds
    ]
    initials = [Configuration.uniform(population, 0) for _ in seeds]
    return schedulers, initials


def uniform_initial(population, state=0):
    return Configuration.uniform(population, state)


def result_key(result):
    """The observable, stream-independent outcome of one run."""
    return (
        result.converged,
        result.convergence_interaction,
        result.interactions,
        result.non_null_interactions,
        result.final_configuration,
    )


class TestConstruction:
    def test_make_simulator_builds_batch_backend(self):
        protocol = AsymmetricNamingProtocol(4)
        population = Population(5)
        scheduler = RandomPairScheduler(population, seed=0)
        simulator = make_simulator(
            "batch", protocol, population, scheduler, NamingProblem()
        )
        assert isinstance(simulator, BatchedEnsembleSimulator)
        assert simulator.compiled

    def test_size_mismatch_raises(self):
        _, population, simulator = build(6)
        wrong = Configuration.uniform(Population(4), 0)
        with pytest.raises(SimulationError, match="4 agents"):
            simulator.run(wrong, max_interactions=10)

    def test_replicate_size_mismatch_raises(self):
        _, population, simulator = build(6)
        wrong = Configuration.uniform(Population(4), 0)
        scheduler = RandomPairScheduler(population, seed=1)
        with pytest.raises(SimulationError, match="4 agents"):
            simulator.run_replicates([wrong], [scheduler])

    def test_mismatched_replicate_lengths_raise(self):
        _, population, simulator = build(6)
        initial = uniform_initial(population)
        scheduler = RandomPairScheduler(population, seed=1)
        with pytest.raises(SimulationError, match="schedulers"):
            simulator.run_replicates([initial, initial], [scheduler])

    def test_empty_replicates(self):
        _, _, simulator = build(6)
        assert simulator.run_replicates([], []) == []


class TestSingleRun:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_converges_to_distinct_names(self, seed):
        _, population, simulator = build(8, seed=seed)
        result = simulator.run(
            uniform_initial(population), max_interactions=200_000
        )
        assert simulator.last_run_lockstep
        assert result.converged
        assert result.trace is None
        names = result.final_configuration.mobile_states
        assert len(set(names)) == len(names)

    def test_already_silent_initial_configuration(self):
        protocol, population, simulator = build(8)
        space = sorted(protocol.mobile_state_space())
        initial = Configuration(tuple(space[:8]), None)
        result = simulator.run(initial, max_interactions=1_000)
        assert simulator.last_run_lockstep
        assert result.converged
        assert result.convergence_interaction == 0
        assert result.non_null_interactions == 0

    def test_silent_with_duplicates_never_converges(self):
        # bound 1 freezes immediately: (0, 0) -> (0, 0) is null, yet the
        # names are not distinct, so the run must report non-convergence
        # at the full budget.
        _, population, simulator = build(3, bound=1)
        result = simulator.run(
            uniform_initial(population), max_interactions=500
        )
        assert simulator.last_run_lockstep
        assert not result.converged
        assert result.interactions == 500

    def test_budget_exhaustion_and_raise_on_timeout(self):
        # N far above the name bound: naming is impossible, the run must
        # exhaust its budget and raise.
        _, population, simulator = build(20, bound=4)
        with pytest.raises(ConvergenceError, match="did not converge"):
            simulator.run(
                uniform_initial(population),
                max_interactions=5_000,
                raise_on_timeout=True,
            )
        assert simulator.last_run_lockstep

    def test_check_interval_certifies_on_boundary(self):
        _, population, simulator = build(6, check_interval=7)
        result = simulator.run(
            uniform_initial(population), max_interactions=100_000
        )
        assert simulator.last_run_lockstep
        assert result.converged
        assert result.convergence_interaction % 7 == 0

    def test_stats_populated(self):
        _, population, simulator = build(8)
        result = simulator.run(
            uniform_initial(population), max_interactions=50_000
        )
        assert result.stats is not None
        assert result.stats.wall_seconds >= 0.0
        assert 0.0 <= result.stats.null_fraction <= 1.0


class TestReplicates:
    def test_one_result_per_replicate_all_converge(self):
        seeds = range(8)
        _, population, simulator = build(8)
        schedulers, initials = replicate_parts(population, seeds)
        results = simulator.run_replicates(initials, schedulers)
        assert simulator.last_run_lockstep
        assert len(results) == len(list(seeds))
        for result in results:
            assert result.converged
            names = result.final_configuration.mobile_states
            assert len(set(names)) == len(names)

    def test_rows_match_single_runs_bit_identically(self):
        """A replicate's outcome is a function of its seed alone."""
        seeds = [3, 11, 42, 7]
        _, population, simulator = build(8)
        schedulers, initials = replicate_parts(population, seeds)
        batched = simulator.run_replicates(initials, schedulers)
        for seed, initial, batch_result in zip(seeds, initials, batched):
            single = build(8, seed=seed)[2].run(
                initial, max_interactions=1_000_000
            )
            assert result_key(single) == result_key(batch_result)

    def test_batch_composition_cannot_change_results(self):
        """Splitting a batch into sub-batches is invisible per seed."""
        seeds = [0, 1, 2, 3, 4, 5]
        _, population, simulator = build(8)
        schedulers, initials = replicate_parts(population, seeds)
        whole = simulator.run_replicates(initials, schedulers)
        split = simulator.run_replicates(
            initials[:2], schedulers[:2]
        ) + simulator.run_replicates(initials[2:], schedulers[2:])
        assert [result_key(r) for r in whole] == [
            result_key(r) for r in split
        ]

    def test_per_replicate_stats_sum_to_batch_wall_clock(self):
        seeds = range(6)
        _, population, simulator = build(8)
        schedulers, initials = replicate_parts(population, seeds)
        results = simulator.run_replicates(initials, schedulers)
        shares = {r.stats.wall_seconds for r in results}
        assert len(shares) == 1  # equal attribution
        assert all(r.stats.wall_seconds >= 0.0 for r in results)


class TestFallbacks:
    def test_trace_falls_back(self):
        _, population, simulator = build(8)
        trace = Trace(capacity=None)
        with pytest.warns(
            BackendFallbackWarning, match="need agent identities"
        ):
            result = simulator.run(
                uniform_initial(population),
                max_interactions=100_000,
                trace=trace,
            )
        assert not simulator.last_run_lockstep
        assert result.converged
        assert trace.records  # the delegate honoured the trace

    def test_fault_hook_falls_back(self):
        _, population, simulator = build(8)
        calls = []

        def hook(interaction, config):
            calls.append(interaction)
            return None

        with pytest.warns(
            BackendFallbackWarning, match="rewrite per-agent"
        ) as record:
            simulator.run(
                uniform_initial(population),
                max_interactions=50,
                fault_hook=hook,
            )
        # The fallback reason travels as structured attributes too.
        batch_warning = next(
            w.message
            for w in record
            if getattr(w.message, "backend", None) == "batch"
        )
        assert batch_warning.delegate == "counts"
        assert "fault hooks" in batch_warning.reason
        assert not simulator.last_run_lockstep
        assert calls

    def test_non_uniform_scheduler_falls_back(self):
        protocol = AsymmetricNamingProtocol(4)
        population = Population(6)
        scheduler = HomonymPreservingScheduler(population, protocol, seed=0)
        simulator = BatchedEnsembleSimulator(
            protocol, population, scheduler, NamingProblem()
        )
        with pytest.warns(
            BackendFallbackWarning,
            match="not the uniform-random pair scheduler",
        ):
            result = simulator.run(
                uniform_initial(population), max_interactions=500
            )
        assert not simulator.last_run_lockstep
        assert not result.converged  # the adversary preserves homonyms

    def test_non_naming_problem_falls_back(self):
        class SilenceProblem(Problem):
            """Satisfied everywhere; converges at the first silence."""

            def is_satisfied(self, config):
                return True

        protocol = AsymmetricNamingProtocol(8)
        population = Population(6)
        scheduler = RandomPairScheduler(population, seed=0)
        simulator = BatchedEnsembleSimulator(
            protocol, population, scheduler, SilenceProblem()
        )
        with pytest.warns(
            BackendFallbackWarning, match="only certifies the naming"
        ):
            result = simulator.run(
                uniform_initial(population), max_interactions=200_000
            )
        assert not simulator.last_run_lockstep
        assert result.converged

    def test_replicates_fall_back_per_run(self):
        """A batch the kernel cannot honour still returns one result per
        replicate, served by per-run counts simulators."""
        seeds = [0, 1, 2]
        _, population, simulator = build(8)
        schedulers, initials = replicate_parts(population, seeds)

        def hook(interaction, config):
            return None

        with pytest.warns(
            BackendFallbackWarning, match="rewrite per-agent"
        ):
            results = simulator.run_replicates(
                initials,
                schedulers,
                max_interactions=200_000,
                fault_hook=hook,
            )
        assert not simulator.last_run_lockstep
        assert len(results) == 3
        assert all(r.converged for r in results)


class TestDifferentialAgainstCounts:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_verdicts_and_tolerances_match_counts(self, seed):
        """Per-seed verdicts agree exactly; interaction counts are
        independent draws from the same distribution, bounded within the
        documented order-of-magnitude tolerance."""
        protocol = AsymmetricNamingProtocol(8)
        population = Population(8)
        results = {}
        for backend in ("batch", "counts"):
            scheduler = RandomPairScheduler(population, seed=seed)
            simulator = make_simulator(
                backend, protocol, population, scheduler, NamingProblem()
            )
            results[backend] = simulator.run(
                uniform_initial(population), max_interactions=500_000
            )
        batch, counts = results["batch"], results["counts"]
        assert batch.converged == counts.converged
        assert batch.converged
        ratio = batch.convergence_interaction / counts.convergence_interaction
        assert 0.1 < ratio < 10.0, (
            f"seed {seed}: batch {batch.convergence_interaction} vs "
            f"counts {counts.convergence_interaction}"
        )

    def test_convergence_time_distribution_matches_counts_at_n_1000(self):
        """Two-sample KS-style check at N = 1000 (the bench's acceptance
        population size).

        The initial configuration is almost-distinct - names 0..997 plus
        duplicates at 996 and 997, right next to the two holes - so both
        engines resolve a handful of events separated by long (gap-
        skipped) null runs, keeping 2 x 40 runs fast.  The empirical-CDF
        gap must stay under the large-sample KS bound
        ``1.95 * sqrt((n+m)/(nm))``.
        """
        n = 1000
        protocol = AsymmetricNamingProtocol(n)
        population = Population(n)
        states = list(range(n - 2)) + [n - 4, n - 3]
        initial = Configuration(tuple(states), None)
        seeds = range(40)
        classes = {"batch": BatchedEnsembleSimulator, "counts": CountSimulator}
        samples = {"batch": [], "counts": []}
        for backend, cls in classes.items():
            for seed in seeds:
                scheduler = RandomPairScheduler(population, seed=seed)
                simulator = cls(
                    protocol,
                    population,
                    scheduler,
                    NamingProblem(),
                    compile_limit=2048,
                )
                result = simulator.run(
                    initial, max_interactions=2_000_000_000
                )
                assert result.converged
                samples[backend].append(result.convergence_interaction)

        d_stat = ks_statistic(samples["batch"], samples["counts"])
        bound = ks_bound(len(samples["batch"]), len(samples["counts"]))
        assert d_stat < bound, (
            f"KS statistic {d_stat:.3f} exceeds bound {bound:.3f}"
        )
