"""Tests for the multinomial leap backend (:mod:`repro.engine.leap`).

The leap backend is *approximately* distribution-equivalent to the
exact counts backend, with per-window error bounded by ``leap_eps`` and
an exact-SSA fallback below the leaping thresholds.  The tests
therefore split by regime: small populations (pure exact path) are
compared to the counts backend with KS-style convergence-time checks,
and large populations (multinomial path engaged, ``stats.leaps > 0``)
are compared on final-configuration statistics at a fixed budget.
"""

from __future__ import annotations

import math
import warnings

import pytest

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.engine import sanitize as _sanitize
from repro.engine.configuration import Configuration
from repro.engine.fast import make_simulator
from repro.engine.leap import (
    DEFAULT_LEAP_EPS,
    DEFAULT_MIN_TAU,
    LeapSimulator,
)
from repro.engine.population import Population
from repro.engine.problems import NamingProblem, Problem
from repro.engine.trace import Trace
from repro.errors import (
    BackendFallbackWarning,
    ConvergenceError,
    SimulationError,
)
from repro.schedulers.adversarial import HomonymPreservingScheduler
from repro.schedulers.random_pair import RandomPairScheduler
from tests.engine.ks import ks_bound, ks_statistic


def build(n, bound=8, seed=0, problem=True, **kwargs):
    """A leap simulator for the asymmetric naming protocol."""
    protocol = AsymmetricNamingProtocol(bound)
    population = Population(n)
    scheduler = RandomPairScheduler(population, seed=seed)
    simulator = LeapSimulator(
        protocol,
        population,
        scheduler,
        NamingProblem() if problem else None,
        **kwargs,
    )
    return protocol, population, simulator


def uniform_initial(population, state=0):
    return Configuration.uniform(population, state)


def spread_initial(protocol, population):
    """States dealt round-robin: stationary null/non-null mix."""
    space = sorted(protocol.mobile_state_space())
    n = population.size
    states = tuple(space) * (n // len(space)) + tuple(space[: n % len(space)])
    return Configuration(states, None)


class TestConstruction:
    def test_make_simulator_builds_leap_backend(self):
        protocol = AsymmetricNamingProtocol(4)
        population = Population(5)
        scheduler = RandomPairScheduler(population, seed=0)
        simulator = make_simulator(
            "leap", protocol, population, scheduler, NamingProblem()
        )
        assert isinstance(simulator, LeapSimulator)
        assert simulator.compiled
        assert simulator.leap_eps == DEFAULT_LEAP_EPS
        assert simulator.min_tau == DEFAULT_MIN_TAU

    def test_make_simulator_forwards_leap_eps(self):
        protocol = AsymmetricNamingProtocol(4)
        population = Population(5)
        scheduler = RandomPairScheduler(population, seed=0)
        simulator = make_simulator(
            "leap",
            protocol,
            population,
            scheduler,
            NamingProblem(),
            leap_eps=0.01,
        )
        assert simulator.leap_eps == 0.01

    def test_leap_eps_rejected_by_other_backends(self):
        protocol = AsymmetricNamingProtocol(4)
        population = Population(5)
        scheduler = RandomPairScheduler(population, seed=0)
        with pytest.raises(SimulationError, match="does not accept"):
            make_simulator(
                "counts",
                protocol,
                population,
                scheduler,
                NamingProblem(),
                leap_eps=0.01,
            )

    @pytest.mark.parametrize("eps", [0.0, 1.0, -0.5, 2.0])
    def test_invalid_leap_eps_raises(self, eps):
        with pytest.raises(SimulationError, match="leap_eps"):
            build(6, leap_eps=eps)

    def test_invalid_min_tau_raises(self):
        with pytest.raises(SimulationError, match="min_tau"):
            build(6, min_tau=0)

    def test_size_mismatch_raises(self):
        _, population, simulator = build(6)
        wrong = Configuration.uniform(Population(4), 0)
        with pytest.raises(SimulationError, match="4 agents"):
            simulator.run(wrong, max_interactions=10)


class TestNativeRuns:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_converges_to_distinct_names(self, seed):
        _, population, simulator = build(8, seed=seed)
        result = simulator.run(
            uniform_initial(population), max_interactions=200_000
        )
        assert simulator.last_run_native
        assert result.converged
        names = result.names()
        assert len(set(names)) == len(names)

    def test_small_population_runs_exactly(self):
        # At N = 8 the adaptive tau collapses below the leaping
        # thresholds, so the whole run advances by exact SSA steps:
        # zero windows, zero approximation error.
        _, population, simulator = build(8, seed=1)
        result = simulator.run(
            uniform_initial(population), max_interactions=200_000
        )
        assert simulator.last_run_native
        assert result.stats.leaps == 0
        assert result.stats.repairs == 0

    def test_large_population_takes_leaps(self):
        protocol, population, simulator = build(50_000, seed=3)
        result = simulator.run(
            spread_initial(protocol, population),
            max_interactions=500_000,
        )
        assert simulator.last_run_native
        assert result.stats.leaps > 0
        assert result.stats.mean_tau > DEFAULT_MIN_TAU
        assert result.interactions == 500_000

    def test_convergence_lands_on_check_boundary(self):
        _, population, simulator = build(8, seed=2)
        result = simulator.run(
            uniform_initial(population), max_interactions=200_000
        )
        assert result.converged
        at = result.convergence_interaction
        assert at % simulator.check_interval == 0 or at == 200_000

    def test_raise_on_timeout(self):
        # Bound 4 < N = 6: naming is impossible, the budget exhausts.
        _, population, simulator = build(6, bound=4)
        with pytest.raises(ConvergenceError) as excinfo:
            simulator.run(
                uniform_initial(population),
                max_interactions=2_000,
                raise_on_timeout=True,
            )
        assert excinfo.value.interactions == 2_000

    def test_last_counts_describe_final_configuration(self):
        _, population, simulator = build(8, seed=4)
        result = simulator.run(
            uniform_initial(population), max_interactions=200_000
        )
        assert simulator.last_counts is not None
        assert sum(simulator.last_counts) == population.size
        assert result.population.size == population.size

    def test_stats_fields_populated_natively(self):
        _, population, simulator = build(8, seed=0)
        result = simulator.run(
            uniform_initial(population), max_interactions=200_000
        )
        stats = result.stats
        assert stats.leaps is not None
        assert stats.mean_tau is not None
        assert stats.repairs is not None
        assert "leaps" in str(stats)


class TestFallbacks:
    def test_trace_falls_back(self):
        _, population, simulator = build(8)
        trace = Trace(capacity=None)
        with pytest.warns(
            BackendFallbackWarning, match="need agent identities"
        ):
            result = simulator.run(
                uniform_initial(population),
                max_interactions=100_000,
                trace=trace,
            )
        assert not simulator.last_run_native
        assert simulator.last_counts is None
        assert result.converged
        assert trace.records

    def test_fault_hook_falls_back(self):
        _, population, simulator = build(8)
        calls = []

        def hook(interaction, config):
            calls.append(interaction)
            return None

        with pytest.warns(
            BackendFallbackWarning, match="rewrite per-agent"
        ):
            simulator.run(
                uniform_initial(population),
                max_interactions=50,
                fault_hook=hook,
            )
        assert not simulator.last_run_native
        assert calls

    def test_non_uniform_scheduler_falls_back_with_reason(self):
        protocol = AsymmetricNamingProtocol(4)
        population = Population(6)
        scheduler = HomonymPreservingScheduler(population, protocol, seed=0)
        simulator = LeapSimulator(
            protocol, population, scheduler, NamingProblem()
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = simulator.run(
                uniform_initial(population), max_interactions=500
            )
        fallbacks = [
            w.message
            for w in caught
            if isinstance(w.message, BackendFallbackWarning)
        ]
        assert fallbacks
        first = fallbacks[0]
        # The structured attributes mirror the warning text, so tooling
        # can dispatch on them without parsing the message.
        assert first.backend == "leap"
        assert first.delegate == "counts"
        assert "uniform-random pair scheduler" in first.reason
        assert first.reason in str(first)
        assert not simulator.last_run_native
        assert not result.converged

    def test_non_naming_problem_falls_back(self):
        class SilenceOnly(Problem):
            display_name = "silence only"

            def is_satisfied(self, config):
                return True

        protocol = AsymmetricNamingProtocol(8)
        population = Population(8)
        scheduler = RandomPairScheduler(population, seed=0)
        simulator = LeapSimulator(
            protocol, population, scheduler, SilenceOnly()
        )
        with pytest.warns(
            BackendFallbackWarning, match="only certifies the naming"
        ):
            simulator.run(uniform_initial(population), max_interactions=100)
        assert not simulator.last_run_native


class TestStatisticalEquivalence:
    def test_convergence_time_distribution_matches_counts(self):
        """KS check on convergence interactions in the exact regime.

        At N = 8 the leap backend advances by exact SSA steps, so its
        convergence-time distribution must match the exact counts
        backend's within the large-sample KS bound.
        """
        seeds = range(40)
        samples = {"counts": [], "leap": []}
        for backend in samples:
            for seed in seeds:
                protocol = AsymmetricNamingProtocol(8)
                population = Population(8)
                scheduler = RandomPairScheduler(population, seed=seed)
                simulator = make_simulator(
                    backend, protocol, population, scheduler, NamingProblem()
                )
                result = simulator.run(
                    uniform_initial(population), max_interactions=200_000
                )
                assert result.converged
                samples[backend].append(result.convergence_interaction)
        d_stat = ks_statistic(samples["counts"], samples["leap"])
        bound = ks_bound(len(samples["counts"]), len(samples["leap"]))
        assert d_stat < bound, (
            f"KS statistic {d_stat:.3f} exceeds bound {bound:.3f}"
        )

    def test_final_configuration_statistic_matches_counts(self):
        """KS check on a final-configuration statistic in the leaping
        regime.

        At N = 20,000 with a mid-flight budget the multinomial path
        carries most of the run (asserted via ``stats.leaps``), so this
        is the test that actually exercises the approximation: the
        distribution of the lowest state's final count must match the
        exact counts backend's within the KS bound at the default
        ``leap_eps``.
        """
        n = 20_000
        budget = 5 * n
        seeds = range(30)
        protocol = AsymmetricNamingProtocol(8)
        lowest = sorted(protocol.mobile_state_space())[0]
        samples = {"counts": [], "leap": []}
        leaps_taken = 0
        for backend in samples:
            for seed in seeds:
                population = Population(n)
                scheduler = RandomPairScheduler(population, seed=seed)
                simulator = make_simulator(
                    backend, protocol, population, scheduler, NamingProblem()
                )
                result = simulator.run(
                    spread_initial(protocol, population),
                    max_interactions=budget,
                )
                if backend == "leap":
                    leaps_taken += result.stats.leaps
                final = sum(
                    1 for s in result.names() if s == lowest
                )
                samples[backend].append(final)
        assert leaps_taken > 0, "the multinomial path never engaged"
        d_stat = ks_statistic(samples["counts"], samples["leap"])
        bound = ks_bound(len(samples["counts"]), len(samples["leap"]))
        assert d_stat < bound, (
            f"KS statistic {d_stat:.3f} exceeds bound {bound:.3f}"
        )


class TestSanitize:
    def test_sanitized_run_is_bit_identical(self):
        results = []
        for sanitize in (False, True):
            _, population, simulator = build(8, seed=5, sanitize=sanitize)
            results.append(
                simulator.run(
                    uniform_initial(population), max_interactions=200_000
                )
            )
        assert results[0] == results[1]

    def test_sanitizer_checks_run_with_leap_backend_name(self, monkeypatch):
        seen = []
        original = _sanitize.check_counts_vector

        def spy(backend, counts, expected_total, interaction):
            seen.append(backend)
            return original(backend, counts, expected_total, interaction)

        monkeypatch.setattr(_sanitize, "check_counts_vector", spy)
        _, population, simulator = build(8, seed=0, sanitize=True)
        simulator.run(uniform_initial(population), max_interactions=50_000)
        assert simulator.last_run_native
        assert "leap" in seen


class TestEnsembleIntegration:
    def test_run_ensemble_routes_leap_backend(self):
        from repro.engine.ensemble import run_ensemble

        protocol = AsymmetricNamingProtocol(8)
        population = Population(8)
        ensemble = run_ensemble(
            protocol,
            population,
            _ensemble_scheduler,
            _ensemble_initial,
            NamingProblem(),
            seeds=range(4),
            max_interactions=200_000,
            backend="leap",
        )
        assert len(ensemble.results) == 4
        assert all(res.converged for res in ensemble.results)


def _ensemble_scheduler(population, seed):
    return RandomPairScheduler(population, seed=seed)


def _ensemble_initial(population, seed):
    return Configuration.uniform(population, 0)
