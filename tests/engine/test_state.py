"""Tests for state classification helpers."""

from dataclasses import dataclass

from repro.engine.state import (
    LeaderState,
    is_leader_state,
    is_mobile_state,
    sort_key,
)


@dataclass(frozen=True)
class _SampleLeader(LeaderState):
    n: int


class TestLeaderStateClassification:
    def test_leader_subclass_is_leader(self):
        assert is_leader_state(_SampleLeader(3))

    def test_int_is_not_leader(self):
        assert not is_leader_state(7)

    def test_bare_leader_state_is_leader(self):
        assert is_leader_state(LeaderState())

    def test_leader_states_hashable_and_equal_by_value(self):
        assert _SampleLeader(1) == _SampleLeader(1)
        assert hash(_SampleLeader(1)) == hash(_SampleLeader(1))
        assert _SampleLeader(1) != _SampleLeader(2)


class TestMobileStateClassification:
    def test_int_is_mobile(self):
        assert is_mobile_state(0)
        assert is_mobile_state(41)

    def test_bool_is_not_mobile(self):
        # bool is an int subclass; states must be genuine integers.
        assert not is_mobile_state(True)

    def test_leader_is_not_mobile(self):
        assert not is_mobile_state(_SampleLeader(0))

    def test_string_is_not_mobile(self):
        assert not is_mobile_state("3")


class TestSortKey:
    def test_integers_order_numerically(self):
        values = [10, 2, -1, 7]
        assert sorted(values, key=sort_key) == [-1, 2, 7, 10]

    def test_mixed_types_total_order(self):
        values = ["b", 3, _SampleLeader(1), True, 1, "a", _SampleLeader(0)]
        ordered = sorted(values, key=sort_key)
        # ints first (numerically), then bools, then strings, then leaders.
        assert ordered[:2] == [1, 3]
        assert ordered[2] is True
        assert ordered[3:5] == ["a", "b"]
        assert ordered[5:] == [_SampleLeader(0), _SampleLeader(1)]

    def test_sort_key_is_deterministic(self):
        values = [5, "x", _SampleLeader(2)]
        assert [sort_key(v) for v in values] == [
            sort_key(v) for v in values
        ]
