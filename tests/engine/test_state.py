"""Tests for state classification helpers."""

from dataclasses import dataclass

from repro.engine.state import (
    LeaderState,
    is_leader_state,
    is_mobile_state,
)


@dataclass(frozen=True)
class _SampleLeader(LeaderState):
    n: int


class TestLeaderStateClassification:
    def test_leader_subclass_is_leader(self):
        assert is_leader_state(_SampleLeader(3))

    def test_int_is_not_leader(self):
        assert not is_leader_state(7)

    def test_bare_leader_state_is_leader(self):
        assert is_leader_state(LeaderState())

    def test_leader_states_hashable_and_equal_by_value(self):
        assert _SampleLeader(1) == _SampleLeader(1)
        assert hash(_SampleLeader(1)) == hash(_SampleLeader(1))
        assert _SampleLeader(1) != _SampleLeader(2)


class TestMobileStateClassification:
    def test_int_is_mobile(self):
        assert is_mobile_state(0)
        assert is_mobile_state(41)

    def test_bool_is_not_mobile(self):
        # bool is an int subclass; states must be genuine integers.
        assert not is_mobile_state(True)

    def test_leader_is_not_mobile(self):
        assert not is_mobile_state(_SampleLeader(0))

    def test_string_is_not_mobile(self):
        assert not is_mobile_state("3")
