"""Tests for interaction traces and replay."""

from repro.engine.configuration import Configuration
from repro.engine.trace import InteractionRecord, Trace, replay


def record(step, i, j, bi, bj, ai, aj):
    return InteractionRecord(step, i, j, bi, bj, ai, aj)


class TestInteractionRecord:
    def test_null_detection(self):
        assert record(0, 1, 2, 5, 6, 5, 6).is_null
        assert not record(0, 1, 2, 5, 6, 5, 7).is_null

    def test_rule_extraction(self):
        rec = record(3, 0, 1, 2, 2, 2, 3)
        assert rec.rule() == ((2, 2), (2, 3))

    def test_str_mentions_agents_and_states(self):
        text = str(record(4, 0, 1, 2, 2, 2, 3))
        assert "#4" in text and "(0, 1)" in text


class TestTrace:
    def test_null_records_skipped_by_default(self):
        trace = Trace()
        trace.record(record(0, 0, 1, 5, 6, 5, 6))
        assert len(trace) == 0
        trace.record(record(1, 0, 1, 5, 5, 5, 6))
        assert len(trace) == 1

    def test_null_records_kept_when_asked(self):
        trace = Trace(record_null=True)
        trace.record(record(0, 0, 1, 5, 6, 5, 6))
        assert len(trace) == 1

    def test_capacity_evicts_oldest(self):
        trace = Trace(capacity=2)
        for step in range(4):
            trace.record(record(step, 0, 1, step, 0, step + 1, 0))
        assert [r.step for r in trace] == [2, 3]
        assert trace.total_recorded == 4

    def test_non_null_counter_ignores_retention(self):
        trace = Trace(capacity=1)
        for step in range(3):
            trace.record(record(step, 0, 1, step, 0, step + 1, 0))
        assert trace.total_non_null == 3

    def test_rules_fired_deduplicates(self):
        trace = Trace()
        for step in range(3):
            trace.record(record(step, 0, 1, 1, 1, 1, 2))
        assert trace.rules_fired() == [((1, 1), (1, 2))]

    def test_describe_contains_header(self):
        trace = Trace()
        trace.record(record(0, 0, 1, 1, 1, 1, 2))
        assert "non-null interactions" in trace.describe()


class TestReplay:
    def test_replay_reproduces_final_configuration(self):
        initial = Configuration((1, 1, 2))
        records = [
            record(0, 0, 1, 1, 1, 1, 2),
            record(1, 1, 2, 2, 2, 2, 0),
        ]
        final = replay(initial, records)
        assert final.states == (1, 2, 0)

    def test_replay_empty_is_identity(self):
        initial = Configuration((3, 4))
        assert replay(initial, []) == initial
