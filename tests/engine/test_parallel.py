"""Tests for the zero-copy shared-memory parallel execution layer."""

import pytest

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.engine import parallel
from repro.engine.configuration import Configuration
from repro.engine.ensemble import run_ensemble
from repro.engine.parallel import (
    SharedBlock,
    ShmLease,
    shm_available,
)
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.errors import BackendFallbackWarning, ConvergenceError
from repro.schedulers.random_pair import RandomPairScheduler

np = pytest.importorskip("numpy")

HAVE_SHM = shm_available()[0]
needs_shm = pytest.mark.skipif(
    not HAVE_SHM, reason="POSIX shared memory unavailable"
)


# Module-level (picklable) factories for the process-parallel tests.
def _scheduler_factory(population, seed):
    return RandomPairScheduler(population, seed=seed)


def _initial_factory(population, seed):
    return Configuration.uniform(population, 0)


def _fault_hook(simulator, interaction):  # pragma: no cover - never called
    return None


def _fingerprint(result):
    """Everything observable about one run, for bit-identity checks."""
    return (
        result.converged,
        result.interactions,
        result.non_null_interactions,
        result.convergence_interaction,
        sorted(result.final_configuration.states)
        if result.final_configuration is not None
        else None,
        result.final_counts,
        tuple(result.notes),
    )


@needs_shm
class TestSharedBlock:
    def test_create_write_attach_read_round_trip(self):
        owner = SharedBlock.create((3, 4), "int64")
        try:
            owner.array[:] = np.arange(12).reshape(3, 4)
            attached = SharedBlock.attach(owner.meta)
            try:
                assert np.array_equal(attached.array, owner.array)
                # Writes travel the other way too: it is one buffer.
                attached.array[2, 3] = -7
                assert owner.array[2, 3] == -7
            finally:
                attached.close()
        finally:
            owner.close()
            owner.unlink()

    def test_meta_is_picklable_and_sized(self):
        import pickle

        block = SharedBlock.create((5, 2), "int64")
        try:
            meta = pickle.loads(pickle.dumps(block.meta))
            assert meta == block.meta
            assert meta.nbytes == 5 * 2 * 8
            assert block.nbytes == meta.nbytes
        finally:
            block.close()
            block.unlink()

    def test_close_and_unlink_are_idempotent(self):
        block = SharedBlock.create((2,), "int64")
        block.close()
        block.close()
        block.unlink()
        block.unlink()
        with pytest.raises(ValueError, match="closed"):
            block.array

    def test_unlink_removes_the_name(self):
        block = SharedBlock.create((2,), "int64")
        meta = block.meta
        block.close()
        block.unlink()
        with pytest.raises(FileNotFoundError):
            SharedBlock.attach(meta)


@needs_shm
class TestShmLease:
    def test_release_unlinks_every_block_and_is_idempotent(self):
        blocks = [
            SharedBlock.create((2,), "int64"),
            SharedBlock.create((3,), "int64"),
        ]
        metas = [b.meta for b in blocks]
        lease = ShmLease(blocks)
        assert lease.nbytes == 2 * 8 + 3 * 8
        assert not lease.released
        lease.release()
        assert lease.released
        lease.release()  # no-op, no error
        for meta in metas:
            with pytest.raises(FileNotFoundError):
                SharedBlock.attach(meta)

    def test_dropped_lease_is_finalized(self):
        block = SharedBlock.create((2,), "int64")
        meta = block.meta
        lease = ShmLease([block])
        del lease, block
        import gc

        gc.collect()
        with pytest.raises(FileNotFoundError):
            SharedBlock.attach(meta)


class TestShmProbe:
    def test_probe_is_cached(self, monkeypatch):
        monkeypatch.setattr(parallel, "_SHM_PROBE", None)
        first = shm_available()
        assert shm_available() is first
        ok, reason = first
        assert ok is (reason is None)


def _run(backend, sanitize, n_jobs, max_interactions=4_000, **kwargs):
    protocol = AsymmetricNamingProtocol(5)
    population = Population(6)
    return run_ensemble(
        protocol,
        population,
        _scheduler_factory,
        _initial_factory,
        NamingProblem(),
        seeds=range(7),
        max_interactions=max_interactions,
        backend=backend,
        sanitize=sanitize,
        n_jobs=n_jobs,
        **kwargs,
    )


@needs_shm
class TestShardedEnsembleIdentity:
    @pytest.mark.parametrize("backend", ["batch", "bleap"])
    @pytest.mark.parametrize("sanitize", [False, True])
    def test_sharded_matches_serial_bit_for_bit(self, backend, sanitize):
        serial = _run(backend, sanitize, n_jobs=1)
        sharded = _run(backend, sanitize, n_jobs=3)
        assert len(serial.results) == len(sharded.results)
        for a, b in zip(serial.results, sharded.results):
            assert _fingerprint(a) == _fingerprint(b)

    def test_sharded_stats_report_the_transport(self):
        sharded = _run("batch", False, n_jobs=3)
        stats = sharded.stats
        assert stats.shards == 3
        assert stats.shm_bytes > 0
        # Per-row savings (one counts row + one scalar row, int64)
        # summed over the 7 replicates total exactly the lease size.
        assert stats.copy_bytes_saved == stats.shm_bytes
        serial = _run("batch", False, n_jobs=1)
        assert serial.stats.shards is None
        assert serial.stats.shm_bytes is None
        assert serial.stats.copy_bytes_saved is None

    def test_raise_on_timeout_parity(self):
        # Same exception, same wording as the serial lockstep batch.
        with pytest.raises(ConvergenceError, match="did not converge") as serial:
            _run("batch", False, n_jobs=1, max_interactions=1,
                 raise_on_timeout=True)
        with pytest.raises(ConvergenceError, match="did not converge") as sharded:
            _run("batch", False, n_jobs=3, max_interactions=1,
                 raise_on_timeout=True)
        assert str(sharded.value) == str(serial.value)


class TestFallbackLadder:
    def test_no_shm_warns_and_matches_serial(self, monkeypatch):
        serial = _run("batch", False, n_jobs=1)
        monkeypatch.setattr(
            parallel, "_SHM_PROBE", (False, "forced by test")
        )
        with pytest.warns(BackendFallbackWarning, match="forced by test"):
            fallen = _run("batch", False, n_jobs=3)
        for a, b in zip(serial.results, fallen.results):
            assert _fingerprint(a) == _fingerprint(b)
        assert fallen.stats.shards is None

    def test_fault_hook_skips_the_shared_path(self):
        # fault_hook disables lockstep everywhere; the sharded path must
        # bow out before allocating segments (returns None upstream).
        from repro.engine.ensemble import _chunk_seeds  # noqa: F401

        protocol = AsymmetricNamingProtocol(5)
        population = Population(6)
        common = (
            protocol,
            population,
            _scheduler_factory,
            _initial_factory,
            NamingProblem(),
            4_000,
            "batch",
            None,
            False,
            _fault_hook,
            False,
        )
        assert parallel.maybe_run_sharded(common, [1, 2, 3], 2) is None
