"""Tests for the protocol abstraction and its validators."""

import pytest

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.counting import CountingProtocol
from repro.core.global_naming import GlobalNamingProtocol
from repro.core.leader_uniform import LeaderUniformNamingProtocol
from repro.core.selfstab_naming import SelfStabilizingNamingProtocol
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.protocol import (
    TableProtocol,
    asymmetric_witnesses,
    verify_closure,
    verify_protocol,
    verify_symmetric,
)
from repro.errors import ProtocolError

ALL_PROTOCOLS = [
    AsymmetricNamingProtocol(4),
    SymmetricGlobalNamingProtocol(4),
    LeaderUniformNamingProtocol(4),
    CountingProtocol(4),
    SelfStabilizingNamingProtocol(4),
    GlobalNamingProtocol(4),
]


class TestVerifyProtocol:
    @pytest.mark.parametrize(
        "protocol", ALL_PROTOCOLS, ids=lambda p: type(p).__name__
    )
    def test_all_paper_protocols_well_formed(self, protocol):
        verify_protocol(protocol)

    def test_closure_rejects_out_of_range_output(self):
        bad = TableProtocol({(0, 0): (0, 5)}, mobile_states=[0, 1])
        with pytest.raises(ProtocolError, match="outside the mobile space"):
            verify_closure(bad)

    def test_symmetry_violation_detected(self):
        # (0, 1) -> (1, 1) but (1, 0) stays null.
        bad = TableProtocol(
            {(0, 1): (1, 1)}, mobile_states=[0, 1], symmetric=True
        )
        with pytest.raises(ProtocolError, match="asymmetric rule"):
            verify_symmetric(bad)

    def test_verify_protocol_checks_declared_symmetry(self):
        bad = TableProtocol(
            {(0, 1): (1, 1)}, mobile_states=[0, 1], symmetric=True
        )
        with pytest.raises(ProtocolError):
            verify_protocol(bad)

    def test_undeclared_symmetry_not_enforced(self):
        asym = TableProtocol(
            {(0, 1): (1, 1)}, mobile_states=[0, 1], symmetric=False
        )
        verify_protocol(asym)  # must not raise


class TestSymmetryDeclarations:
    @pytest.mark.parametrize(
        "protocol",
        [p for p in ALL_PROTOCOLS if p.symmetric],
        ids=lambda p: type(p).__name__,
    )
    def test_declared_symmetric_protocols_have_no_witnesses(self, protocol):
        assert asymmetric_witnesses(protocol) == []

    def test_asymmetric_protocol_has_witnesses(self):
        witnesses = asymmetric_witnesses(AsymmetricNamingProtocol(3))
        assert ((0, 0), ) != ()
        assert all(p == q for p, q in witnesses)
        assert witnesses  # homonym rules are oriented


class TestStateSpaceDeclarations:
    def test_asymmetric_uses_exactly_p_states(self):
        assert AsymmetricNamingProtocol(7).num_mobile_states == 7

    def test_symmetric_global_uses_p_plus_one(self):
        assert SymmetricGlobalNamingProtocol(7).num_mobile_states == 8

    def test_leader_uniform_uses_p(self):
        assert LeaderUniformNamingProtocol(7).num_mobile_states == 7

    def test_counting_uses_p(self):
        assert CountingProtocol(7).num_mobile_states == 7

    def test_selfstab_uses_p_plus_one(self):
        assert SelfStabilizingNamingProtocol(7).num_mobile_states == 8

    def test_global_naming_uses_p(self):
        assert GlobalNamingProtocol(7).num_mobile_states == 7

    def test_all_states_union(self):
        protocol = CountingProtocol(3)
        combined = protocol.all_states()
        assert protocol.mobile_state_space() <= combined
        assert protocol.leader_state_space() <= combined


class TestIsNull:
    def test_null_detection(self):
        protocol = AsymmetricNamingProtocol(3)
        assert protocol.is_null(0, 1)
        assert not protocol.is_null(1, 1)

    def test_repr_mentions_name_and_states(self):
        text = repr(AsymmetricNamingProtocol(3))
        assert "asymmetric naming" in text
        assert "3 mobile states" in text


class TestTableProtocol:
    def test_missing_entries_are_null(self):
        protocol = TableProtocol({}, mobile_states=[0, 1])
        assert protocol.transition(0, 1) == (0, 1)

    def test_table_copy_is_defensive(self):
        protocol = TableProtocol({(0, 0): (1, 1)}, mobile_states=[0, 1])
        protocol.table[(0, 0)] = (0, 0)
        assert protocol.transition(0, 0) == (1, 1)

    def test_requires_leader_follows_leader_states(self):
        from repro.analysis.enumeration import EnumLeaderState

        protocol = TableProtocol(
            {}, mobile_states=[0], leader_states=[EnumLeaderState(0)]
        )
        assert protocol.requires_leader
