"""The runtime sanitizer: zero-perturbation when clean, loud when not.

Two properties carry the feature:

* ``sanitize=True`` consumes no randomness, so every backend's result is
  bit-identical with and without it (the differential tests);
* each invariant check actually fires on a corrupted run, raising
  :class:`~repro.errors.SanitizerError` with the backend, invariant id
  and offending step (the injection tests — corruption is injected by
  wrapping the check functions the backends call, or through the
  reference backend's fault hook).
"""

import numpy as np
import pytest

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.global_naming import GlobalNamingProtocol
from repro.engine import sanitize
from repro.engine.configuration import Configuration
from repro.engine.ensemble import run_ensemble
from repro.engine.fast import make_simulator
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.state import sort_key
from repro.errors import SanitizerError
from repro.schedulers.random_pair import RandomPairScheduler

ALL_BACKENDS = ("reference", "fast", "counts", "batch")


def result_key(result):
    return (
        result.converged,
        result.convergence_interaction,
        result.interactions,
        result.non_null_interactions,
        result.final_configuration,
    )


def run_once(backend, sanitize_flag, protocol, population, initial, seed=3):
    scheduler = RandomPairScheduler(population, seed=seed)
    simulator = make_simulator(
        backend,
        protocol,
        population,
        scheduler,
        NamingProblem(),
        sanitize=sanitize_flag,
    )
    return simulator.run(initial, max_interactions=200_000)


class TestUnitChecks:
    def test_population_size_mismatch(self):
        with pytest.raises(SanitizerError) as err:
            sanitize.check_population_size("reference", 5, 4, 17)
        assert err.value.backend == "reference"
        assert err.value.invariant == "population-size"
        assert err.value.interaction == 17

    def test_counts_vector_negative_and_sum(self):
        counts = np.array([2, -1, 3], dtype=np.int64)
        with pytest.raises(SanitizerError) as err:
            sanitize.check_counts_vector("counts", counts, 4, 9)
        assert err.value.invariant == "negative-count"
        ok = np.array([2, 1, 3], dtype=np.int64)
        sanitize.check_counts_vector("counts", ok, 6, 9)
        with pytest.raises(SanitizerError) as err:
            sanitize.check_counts_vector("counts", ok, 7, 9)
        assert err.value.invariant == "population-size"

    def test_counts_rows_vectorized(self):
        rows = np.array([[2, 2], [3, 1]], dtype=np.int64)
        ids = np.array([4, 9], dtype=np.int64)
        sanitize.check_counts_rows("batch", rows, ids, 4, 100)
        rows[1, 0] = -1
        with pytest.raises(SanitizerError) as err:
            sanitize.check_counts_rows("batch", rows, ids, 4, 100)
        assert err.value.invariant == "negative-count"
        assert "replicate 9" in str(err.value)

    def test_index_vector_range_and_role(self):
        idx = np.array([0, 1, 2], dtype=np.int64)
        sanitize.check_index_vector(
            "fast", idx, 4, frozenset({0, 1, 2}), None, 5
        )
        with pytest.raises(SanitizerError) as err:
            sanitize.check_index_vector(
                "fast", idx, 2, frozenset({0, 1, 2}), None, 5
            )
        assert err.value.invariant == "state-range"

    def test_silence_tracker(self):
        tracker = sanitize.SilenceTracker("reference")
        tracker.note_change(1)  # not silent yet: fine
        tracker.note_silent()
        with pytest.raises(SanitizerError) as err:
            tracker.note_change(2)
        assert err.value.invariant == "post-silence-change"
        tracker.reset()  # faults legitimately wake a silent run
        tracker.note_change(3)


class TestDifferentialBitIdentity:
    """The acceptance criterion: sanitize=True is bit-identical on all
    four backends."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_leaderless(self, backend):
        protocol = AsymmetricNamingProtocol(5)
        population = Population(5)
        initial = Configuration.uniform(population, 0)
        plain = run_once(backend, False, protocol, population, initial)
        checked = run_once(backend, True, protocol, population, initial)
        assert result_key(plain) == result_key(checked)
        assert plain.converged

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_with_leader(self, backend):
        protocol = GlobalNamingProtocol(4)
        population = Population(4, True)
        mobile0 = sorted(protocol.mobile_state_space(), key=sort_key)[0]
        initial = Configuration.uniform(
            population, mobile0, protocol.initial_leader_state()
        )
        plain = run_once(backend, False, protocol, population, initial)
        checked = run_once(backend, True, protocol, population, initial)
        assert result_key(plain) == result_key(checked)


class TestInjectedViolations:
    def test_reference_catches_wrong_size_fault(self):
        """A fault hook returning a wrong-size configuration trips the
        population-size invariant on the reference backend."""
        protocol = AsymmetricNamingProtocol(5)
        population = Population(5)
        small = Population(4)

        def chop(interaction, config):
            if interaction == 50:
                return Configuration.uniform(small, 0)
            return None

        scheduler = RandomPairScheduler(population, seed=0)
        simulator = make_simulator(
            "reference",
            protocol,
            population,
            scheduler,
            NamingProblem(),
            sanitize=True,
        )
        with pytest.raises(SanitizerError) as err:
            simulator.run(
                Configuration.uniform(population, 0),
                max_interactions=10_000,
                fault_hook=chop,
            )
        assert err.value.backend == "reference"
        assert err.value.invariant == "population-size"
        assert err.value.interaction == 50

    def test_counts_catches_corrupted_counts(self, monkeypatch):
        """Corrupting the counts vector mid-run (by wrapping the check
        the backend calls) is reported by the next check."""
        real_check = sanitize.check_counts_vector
        calls = {"n": 0}

        def corrupting_check(backend, counts, expected_total, interaction):
            calls["n"] += 1
            if calls["n"] == 3:
                counts[0] += 1  # lose conservation from here on
            real_check(backend, counts, expected_total, interaction)

        monkeypatch.setattr(
            sanitize, "check_counts_vector", corrupting_check
        )
        protocol = AsymmetricNamingProtocol(5)
        population = Population(5)
        with pytest.raises(SanitizerError) as err:
            run_once(
                "counts",
                True,
                protocol,
                population,
                Configuration.uniform(population, 0),
            )
        assert err.value.backend == "counts"
        assert err.value.invariant == "population-size"

    def test_batch_catches_corrupted_rows(self, monkeypatch):
        real_check = sanitize.check_counts_rows

        def corrupting_check(backend, rows, row_ids, expected_total, step):
            if step > 0 and rows.size:
                rows[0, 0] -= 1
            real_check(backend, rows, row_ids, expected_total, step)

        monkeypatch.setattr(sanitize, "check_counts_rows", corrupting_check)
        protocol = AsymmetricNamingProtocol(5)
        population = Population(5)
        with pytest.raises(SanitizerError) as err:
            run_once(
                "batch",
                True,
                protocol,
                population,
                Configuration.uniform(population, 0),
            )
        assert err.value.backend == "batch"

    def test_unsanitized_run_never_checks(self, monkeypatch):
        """sanitize=False must not even call the check functions."""

        def explode(*args, **kwargs):
            raise AssertionError("sanitizer ran without sanitize=True")

        monkeypatch.setattr(sanitize, "check_counts_vector", explode)
        monkeypatch.setattr(sanitize, "check_counts_rows", explode)
        monkeypatch.setattr(sanitize, "check_index_vector", explode)
        protocol = AsymmetricNamingProtocol(5)
        population = Population(5)
        for backend in ALL_BACKENDS:
            result = run_once(
                backend,
                False,
                protocol,
                population,
                Configuration.uniform(population, 0),
            )
            assert result.converged


class TestEnsembleSanitize:
    def test_run_ensemble_sanitize_bit_identical(self):
        protocol = AsymmetricNamingProtocol(5)
        population = Population(5)
        kwargs = dict(
            scheduler_factory=lambda pop, seed: RandomPairScheduler(
                pop, seed=seed
            ),
            initial_factory=lambda pop, seed: Configuration.uniform(pop, 0),
            problem=NamingProblem(),
            seeds=range(4),
        )
        plain = run_ensemble(protocol, population, **kwargs)
        checked = run_ensemble(
            protocol, population, sanitize=True, **kwargs
        )
        assert [result_key(r) for r in plain.results] == [
            result_key(r) for r in checked.results
        ]
