"""Shared two-sample Kolmogorov-Smirnov helpers for engine tests.

Every approximate backend (leap, bleap, fluid) certifies itself the
same way: collect a per-seed sample of some scalar run statistic from
the approximate engine and from an exact (or previously-certified)
baseline, and require the empirical-CDF gap to stay under the
large-sample KS acceptance bound.  The helpers used to be duplicated
across test_leap, test_bleap and test_batch; they live here so every
tier's gate applies the identical statistic and confidence level.
"""

import math


def ks_statistic(a, b):
    """Two-sample empirical-CDF gap (the KS D statistic)."""
    a, b = sorted(a), sorted(b)

    def cdf(sample, x):
        lo, hi = 0, len(sample)
        while lo < hi:
            mid = (lo + hi) // 2
            if sample[mid] <= x:
                lo = mid + 1
            else:
                hi = mid
        return lo / len(sample)

    pooled = sorted(set(a) | set(b))
    return max(abs(cdf(a, x) - cdf(b, x)) for x in pooled)


def ks_bound(n, m):
    """Large-sample KS acceptance bound at far-tail confidence."""
    return 1.95 * math.sqrt((n + m) / (n * m))


def assert_ks_close(a, b, label="samples"):
    """Assert the two samples' CDF gap is under the acceptance bound."""
    d_stat = ks_statistic(a, b)
    bound = ks_bound(len(a), len(b))
    assert d_stat < bound, (
        f"{label}: KS statistic {d_stat:.3f} exceeds bound {bound:.3f}"
    )
