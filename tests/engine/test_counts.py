"""Tests for the count-based backend (:mod:`repro.engine.counts`).

The counts backend is *statistically* equivalent to the agent-based
backends, not stream-identical, so the differential tests here compare
counts trajectories under a shared pair stream (exact) and
convergence-time distributions under independent randomness (KS-style),
rather than asserting byte-equal results.
"""

from __future__ import annotations

import math

import pytest

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.global_naming import GlobalNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.counts import (
    CountSimulator,
    apply_record,
    configuration_counts,
)
from repro.engine.fast import FastSimulator, make_simulator
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.protocol import TableProtocol
from repro.engine.trace import Trace
from repro.errors import (
    BackendFallbackWarning,
    ConvergenceError,
    SimulationError,
)
from repro.schedulers.adversarial import HomonymPreservingScheduler
from repro.schedulers.random_pair import RandomPairScheduler


def build(n, bound=8, seed=0, problem=True, **kwargs):
    """A counts simulator for the asymmetric naming protocol."""
    protocol = AsymmetricNamingProtocol(bound)
    population = Population(n)
    scheduler = RandomPairScheduler(population, seed=seed)
    simulator = CountSimulator(
        protocol,
        population,
        scheduler,
        NamingProblem() if problem else None,
        **kwargs,
    )
    return protocol, population, simulator


def uniform_initial(population, state=0):
    return Configuration.uniform(population, state)


class TestConstruction:
    def test_make_simulator_builds_counts_backend(self):
        protocol = AsymmetricNamingProtocol(4)
        population = Population(5)
        scheduler = RandomPairScheduler(population, seed=0)
        simulator = make_simulator(
            "counts", protocol, population, scheduler, NamingProblem()
        )
        assert isinstance(simulator, CountSimulator)
        assert simulator.compiled

    def test_size_mismatch_raises(self):
        _, population, simulator = build(6)
        wrong = Configuration.uniform(Population(4), 0)
        with pytest.raises(SimulationError, match="4 agents"):
            simulator.run(wrong, max_interactions=10)


class TestNativeRuns:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_converges_to_distinct_names(self, seed):
        _, population, simulator = build(8, seed=seed)
        result = simulator.run(
            uniform_initial(population), max_interactions=200_000
        )
        assert simulator.last_run_native
        assert result.converged
        assert result.trace is None
        names = result.final_configuration.mobile_states
        assert len(set(names)) == len(names)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_final_configuration_matches_counts_vector(self, seed):
        """The materialized representative reproduces ``last_counts``."""
        _, population, simulator = build(12, seed=seed)
        result = simulator.run(
            uniform_initial(population), max_interactions=200_000
        )
        assert simulator.last_run_native
        reconstructed = configuration_counts(
            simulator._table, result.final_configuration
        )
        assert reconstructed == simulator.last_counts

    def test_small_events_per_batch_still_converges(self):
        _, population, simulator = build(8, seed=1, events_per_batch=4)
        result = simulator.run(
            uniform_initial(population), max_interactions=200_000
        )
        assert simulator.last_run_native
        assert result.converged

    def test_dense_regime_small_population(self):
        """Small N puts the sampler in the per-event true-weight path."""
        _, population, simulator = build(6, seed=7)
        result = simulator.run(
            uniform_initial(population), max_interactions=200_000
        )
        assert simulator.last_run_native
        assert result.converged
        names = result.final_configuration.mobile_states
        assert len(set(names)) == len(names)

    def test_already_silent_initial_configuration(self):
        protocol, population, simulator = build(8)
        space = sorted(protocol.mobile_state_space())
        initial = Configuration(tuple(space[:8]), None)
        result = simulator.run(initial, max_interactions=1_000)
        assert simulator.last_run_native
        assert result.converged
        assert result.convergence_interaction == 0
        assert result.non_null_interactions == 0

    def test_stats_populated(self):
        _, population, simulator = build(8)
        result = simulator.run(
            uniform_initial(population), max_interactions=50_000
        )
        assert result.stats is not None
        assert result.stats.wall_seconds >= 0.0
        assert 0.0 <= result.stats.null_fraction <= 1.0

    def test_raise_on_timeout(self):
        # N far above the name bound: naming is impossible, the run
        # must exhaust its budget and raise.
        _, population, simulator = build(20, bound=4)
        with pytest.raises(ConvergenceError, match="did not converge"):
            simulator.run(
                uniform_initial(population),
                max_interactions=5_000,
                raise_on_timeout=True,
            )
        assert simulator.last_run_native

    def test_leader_protocol_keeps_leader_slot_and_counts(self):
        protocol = GlobalNamingProtocol(4)
        population = Population(4, has_leader=True)
        scheduler = RandomPairScheduler(population, seed=3)
        simulator = CountSimulator(
            protocol, population, scheduler, NamingProblem()
        )
        initial = Configuration.from_states(
            population,
            [sorted(protocol.mobile_state_space())[0]] * 4,
            protocol.initial_leader_state(),
        )
        result = simulator.run(initial, max_interactions=100_000)
        assert simulator.last_run_native
        final = result.final_configuration
        assert final.leader_index == initial.leader_index
        assert (
            configuration_counts(simulator._table, final)
            == simulator.last_counts
        )


class TestCountsTrajectory:
    """Exact differential check: replaying an agent-based trace through
    :func:`apply_record` must land on the agent-based final counts."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_trace_replay_matches_fast_backend(self, seed):
        protocol = AsymmetricNamingProtocol(5)
        population = Population(10)
        scheduler = RandomPairScheduler(population, seed=seed)
        simulator = FastSimulator(
            protocol, population, scheduler, NamingProblem()
        )
        trace = Trace(capacity=None)
        initial = uniform_initial(population)
        result = simulator.run(
            initial, max_interactions=50_000, trace=trace
        )
        table = simulator._table
        counts = configuration_counts(table, initial)
        for record in trace.records:
            apply_record(table, counts, record)
        assert counts == configuration_counts(
            table, result.final_configuration
        )


class TestStatisticalEquivalence:
    def test_convergence_time_distribution_matches_fast(self):
        """Two-sample KS-style check on convergence interactions.

        The backends draw independent randomness, so their convergence
        times are compared as distributions: the empirical-CDF gap must
        stay under the large-sample KS bound ``1.95 * sqrt((n+m)/(nm))``
        (far into the tail; a genuine dynamics bug trips it reliably).
        """
        seeds = range(40)
        samples = {"fast": [], "counts": []}
        for backend in samples:
            for seed in seeds:
                protocol = AsymmetricNamingProtocol(8)
                population = Population(8)
                scheduler = RandomPairScheduler(population, seed=seed)
                simulator = make_simulator(
                    backend, protocol, population, scheduler, NamingProblem()
                )
                result = simulator.run(
                    uniform_initial(population), max_interactions=200_000
                )
                assert result.converged
                samples[backend].append(result.convergence_interaction)

        fast = sorted(samples["fast"])
        counts = sorted(samples["counts"])
        pooled = sorted(set(fast + counts))
        n, m = len(fast), len(counts)

        def cdf(sample, x):
            lo, hi = 0, len(sample)
            while lo < hi:
                mid = (lo + hi) // 2
                if sample[mid] <= x:
                    lo = mid + 1
                else:
                    hi = mid
            return lo / len(sample)

        d_stat = max(abs(cdf(fast, x) - cdf(counts, x)) for x in pooled)
        bound = 1.95 * math.sqrt((n + m) / (n * m))
        assert d_stat < bound, (
            f"KS statistic {d_stat:.3f} exceeds bound {bound:.3f}"
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_verdicts_agree_with_fast(self, seed):
        for backend in ("fast", "counts"):
            protocol = AsymmetricNamingProtocol(64)
            population = Population(64)
            scheduler = RandomPairScheduler(population, seed=seed)
            simulator = make_simulator(
                backend, protocol, population, scheduler, NamingProblem()
            )
            result = simulator.run(
                uniform_initial(population), max_interactions=500_000
            )
            assert result.converged, f"{backend} failed at seed {seed}"


class TestFallbacks:
    def test_trace_falls_back(self):
        _, population, simulator = build(8)
        trace = Trace(capacity=None)
        with pytest.warns(
            BackendFallbackWarning, match="need agent identities"
        ):
            result = simulator.run(
                uniform_initial(population),
                max_interactions=100_000,
                trace=trace,
            )
        assert not simulator.last_run_native
        assert simulator.last_counts is None
        assert result.converged
        assert trace.records  # the delegate honoured the trace

    def test_fault_hook_falls_back(self):
        _, population, simulator = build(8)
        calls = []

        def hook(interaction, config):
            calls.append(interaction)
            return None

        with pytest.warns(
            BackendFallbackWarning, match="rewrite per-agent"
        ):
            simulator.run(
                uniform_initial(population),
                max_interactions=50,
                fault_hook=hook,
            )
        assert not simulator.last_run_native
        assert calls

    def test_non_uniform_scheduler_falls_back(self):
        protocol = AsymmetricNamingProtocol(4)
        population = Population(6)
        scheduler = HomonymPreservingScheduler(population, protocol, seed=0)
        simulator = CountSimulator(
            protocol, population, scheduler, NamingProblem()
        )
        with pytest.warns(
            BackendFallbackWarning,
            match="not the uniform-random pair scheduler",
        ) as record:
            result = simulator.run(
                uniform_initial(population), max_interactions=500
            )
        # The fallback reason is carried structurally, not just in the
        # message text, so tooling can dispatch without parsing.
        counts_warning = next(
            w.message
            for w in record
            if getattr(w.message, "backend", None) == "counts"
        )
        assert counts_warning.delegate == "fast"
        assert "uniform-random pair scheduler" in counts_warning.reason
        assert counts_warning.reason in str(counts_warning)
        assert not simulator.last_run_native
        assert not result.converged  # the adversary preserves homonyms

    def test_non_permutation_invariant_problem_falls_back(self):
        class PositionalNaming(NamingProblem):
            permutation_invariant = False

        protocol = AsymmetricNamingProtocol(8)
        population = Population(8)
        scheduler = RandomPairScheduler(population, seed=0)
        simulator = CountSimulator(
            protocol, population, scheduler, PositionalNaming()
        )
        with pytest.warns(
            BackendFallbackWarning, match="not permutation-invariant"
        ):
            result = simulator.run(
                uniform_initial(population), max_interactions=200_000
            )
        assert not simulator.last_run_native
        assert result.converged

    def test_role_boundary_crossing_protocol_falls_back(self):
        # A rule that turns a mobile state into a leader-only state:
        # counts alone can no longer identify the leader.
        protocol = TableProtocol(
            {(0, "L"): ("L", 0)},
            mobile_states=(0, 1),
            leader_states=("L",),
            display_name="role swapper",
        )
        population = Population(4, has_leader=True)
        scheduler = RandomPairScheduler(population, seed=0)
        simulator = CountSimulator(protocol, population, scheduler, None)
        initial = Configuration.from_states(population, [0, 0, 1, 1], "L")
        with pytest.warns(
            BackendFallbackWarning, match="role boundary"
        ):
            simulator.run(initial, max_interactions=100)
        assert not simulator.last_run_native

    def test_rogue_state_falls_back(self):
        _, population, simulator = build(3)
        rogue = Configuration.from_states(population, (0, 1, "rogue"))
        with pytest.warns(
            BackendFallbackWarning,
            match="outside the protocol's declared",
        ):
            simulator.run(rogue, max_interactions=100)
        assert not simulator.last_run_native
