"""Tests for problem predicates, stability and silence detection."""

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.counting import CountingLeaderState, CountingProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import (
    CountingProblem,
    NamingProblem,
    distinct_state_pairs,
    is_silent,
)


class TestDistinctStatePairs:
    def test_pairs_from_multiset(self):
        config = Configuration((1, 1, 2))
        pairs = distinct_state_pairs(config)
        assert (1, 1) in pairs  # two agents share state 1
        assert (1, 2) in pairs and (2, 1) in pairs
        assert (2, 2) not in pairs  # only one agent in state 2

    def test_single_agent_per_state_no_diagonal(self):
        pairs = distinct_state_pairs(Configuration((1, 2, 3)))
        assert all(p != q for p, q in pairs)

    def test_includes_leader_state(self):
        leader = CountingLeaderState(0, 0)
        config = Configuration((1, leader), leader_index=1)
        pairs = distinct_state_pairs(config)
        assert (1, leader) in pairs
        assert (leader, 1) in pairs


class TestIsSilent:
    def test_distinct_names_silent_for_asymmetric(self):
        protocol = AsymmetricNamingProtocol(3)
        assert is_silent(protocol, Configuration((0, 1, 2)))

    def test_homonyms_not_silent(self):
        protocol = AsymmetricNamingProtocol(3)
        assert not is_silent(protocol, Configuration((0, 0, 2)))

    def test_counting_converged_is_silent_for_small_n(self):
        protocol = CountingProtocol(4)
        pop = Population(2, has_leader=True)
        config = Configuration.from_states(
            pop, (1, 2), CountingLeaderState(2, 3)
        )
        assert is_silent(protocol, config)


class TestNamingProblem:
    def test_satisfied_on_distinct(self):
        assert NamingProblem().is_satisfied(Configuration((1, 2, 3)))

    def test_unsatisfied_on_homonyms(self):
        assert not NamingProblem().is_satisfied(Configuration((1, 2, 2)))

    def test_solved_requires_stability(self):
        # Distinct names but state 0 twice away: asymmetric rule is null on
        # distinct states, so distinct names are automatically stable.
        protocol = AsymmetricNamingProtocol(3)
        problem = NamingProblem()
        assert problem.is_solved(protocol, Configuration((0, 1, 2)))

    def test_not_solved_when_unstable(self):
        protocol = AsymmetricNamingProtocol(4)
        problem = NamingProblem()
        # Names distinct for the *mobile* agents of this leaderless setup
        # is already the full check; craft a homonym case instead.
        assert not problem.is_solved(protocol, Configuration((1, 1, 2)))


class TestCountingProblem:
    def test_satisfied_when_guess_matches(self):
        problem = CountingProblem(3)
        config = Configuration(
            (1, 2, 3, CountingLeaderState(3, 5)), leader_index=3
        )
        assert problem.is_satisfied(config)

    def test_unsatisfied_when_guess_low(self):
        problem = CountingProblem(3)
        config = Configuration(
            (1, 2, 3, CountingLeaderState(2, 5)), leader_index=3
        )
        assert not problem.is_satisfied(config)

    def test_stability_blocks_pending_increment(self):
        protocol = CountingProtocol(4)
        problem = CountingProblem(1)
        pop = Population(1, has_leader=True)
        # Guess is 1 but the agent's name exceeds it: the next meeting
        # bumps the guess, so the count is not yet stable.
        config = Configuration.from_states(
            pop, (3,), CountingLeaderState(1, 1)
        )
        assert problem.is_satisfied(config)
        assert not problem.is_stable(protocol, config)

    def test_stable_after_true_convergence(self):
        protocol = CountingProtocol(4)
        problem = CountingProblem(2)
        pop = Population(2, has_leader=True)
        config = Configuration.from_states(
            pop, (1, 2), CountingLeaderState(2, 3)
        )
        assert problem.is_solved(protocol, config)
