"""Tests for the mean-field fluid backend (:mod:`repro.engine.fluid`).

The fluid backend integrates the deterministic mean-field ODE while
every stochastically active species is macroscopic, then hands the
rounded counts to the leap backend for the endgame.  The contract
therefore splits three ways: populations with no macroscopic species
run pure leap and must be *bit-identical* to ``backend="leap"``;
populations where the ODE engages must be KS-distribution-equivalent
to pure leap (the certified handoff, gated here in both the large-N
and the near-silence regime); and populations whose agent vectors
cannot exist at all go through the counts-native
:meth:`~repro.engine.fluid.FluidSimulator.run_counts` entry, exercised
up to N = 10^10.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.global_naming import GlobalNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.ensemble import FLUID_MIN_POPULATION, run_ensemble
from repro.engine.fast import make_simulator
from repro.engine.fluid import (
    DEFAULT_HANDOFF_FLOOR,
    FluidSimulator,
    _round_conserving,
)
from repro.engine.leap import LeapSimulator
from repro.engine.population import Population
from repro.engine.problems import NamingProblem, Problem
from repro.engine.trace import Trace
from repro.errors import (
    BackendFallbackWarning,
    ConvergenceError,
    SimulationError,
)
from repro.schedulers.adversarial import HomonymPreservingScheduler
from repro.schedulers.random_pair import RandomPairScheduler
from tests.engine.ks import ks_bound, ks_statistic

np = pytest.importorskip("numpy")


def build(n, bound=8, seed=0, problem=True, **kwargs):
    """A fluid simulator for the asymmetric naming protocol."""
    protocol = AsymmetricNamingProtocol(bound)
    population = Population(n)
    scheduler = RandomPairScheduler(population, seed=seed)
    simulator = FluidSimulator(
        protocol,
        population,
        scheduler,
        NamingProblem() if problem else None,
        **kwargs,
    )
    return protocol, population, simulator


def uniform_initial(population, state=0):
    return Configuration.uniform(population, state)


def result_key(result):
    """The observable, stream-independent outcome of one run."""
    return (
        result.converged,
        result.convergence_interaction,
        result.interactions,
        result.non_null_interactions,
        result.final_configuration,
    )


class TestConstruction:
    def test_make_simulator_builds_fluid_backend(self):
        protocol = AsymmetricNamingProtocol(4)
        population = Population(5)
        scheduler = RandomPairScheduler(population, seed=0)
        simulator = make_simulator(
            "fluid", protocol, population, scheduler, NamingProblem()
        )
        assert isinstance(simulator, FluidSimulator)
        assert simulator.compiled

    def test_invalid_handoff_floor_raises(self):
        with pytest.raises(SimulationError, match="handoff_floor"):
            build(8, handoff_floor=0)

    def test_size_mismatch_raises(self):
        _, _, simulator = build(6)
        wrong = Configuration.uniform(Population(4), 0)
        with pytest.raises(SimulationError, match="4 agents"):
            simulator.run(wrong, max_interactions=10)

    def test_default_floor_matches_leap_eps_budget(self):
        # 1/sqrt(floor) is the relative fluctuation scale of the
        # smallest fluid species; the default keeps it ~3%, aligned
        # with the leap backend's default eps.
        assert DEFAULT_HANDOFF_FLOOR == 1_000


class TestRoundConserving:
    def test_exact_integers_pass_through(self):
        x = np.array([3.0, 5.0, 2.0])
        assert _round_conserving(x, 10).tolist() == [3, 5, 2]

    def test_largest_remainders_receive_the_deficit(self):
        x = np.array([2.6, 3.3, 4.1])
        # floors sum to 9; the one missing agent goes to the largest
        # fractional remainder (0.6).
        assert _round_conserving(x, 10).tolist() == [3, 3, 4]

    def test_sum_is_conserved_on_random_vectors(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            x = rng.random(7) * rng.integers(1, 10_000)
            size = int(np.floor(x).sum()) + int(rng.integers(0, 7))
            rounded = _round_conserving(x, size)
            assert int(rounded.sum()) == size
            assert (rounded >= 0).all()


class TestFallbacks:
    def test_trace_falls_back_to_leap(self):
        _, population, simulator = build(8)
        trace = Trace(capacity=None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = simulator.run(
                uniform_initial(population),
                max_interactions=100_000,
                trace=trace,
            )
        fallbacks = [
            w.message
            for w in caught
            if isinstance(w.message, BackendFallbackWarning)
        ]
        assert fallbacks
        first = fallbacks[0]
        assert first.backend == "fluid"
        assert first.delegate == "leap"
        assert not simulator.last_run_native
        assert simulator.last_counts is None
        assert result.converged
        assert trace.records

    def test_leader_population_falls_back_with_reason(self):
        protocol = GlobalNamingProtocol(4)
        population = Population(4, has_leader=True)
        scheduler = RandomPairScheduler(population, seed=3)
        simulator = FluidSimulator(
            protocol, population, scheduler, NamingProblem()
        )
        initial = Configuration.from_states(
            population,
            [sorted(protocol.mobile_state_space())[0]] * 4,
            protocol.initial_leader_state(),
        )
        with pytest.warns(
            BackendFallbackWarning, match="no mean-field limit"
        ):
            result = simulator.run(initial, max_interactions=100_000)
        assert not simulator.last_run_native
        assert result.final_configuration.leader_index is not None

    def test_non_uniform_scheduler_falls_back(self):
        protocol = AsymmetricNamingProtocol(4)
        population = Population(6)
        scheduler = HomonymPreservingScheduler(population, protocol, seed=0)
        simulator = FluidSimulator(
            protocol, population, scheduler, NamingProblem()
        )
        with pytest.warns(BackendFallbackWarning):
            simulator.run(uniform_initial(population), max_interactions=500)
        assert not simulator.last_run_native

    def test_fault_hook_falls_back(self):
        _, population, simulator = build(8)
        calls = []

        def hook(interaction, config):
            calls.append(interaction)
            return None

        with pytest.warns(BackendFallbackWarning):
            simulator.run(
                uniform_initial(population),
                max_interactions=50,
                fault_hook=hook,
            )
        assert not simulator.last_run_native
        assert calls

    def test_non_naming_problem_falls_back(self):
        class SilenceOnly(Problem):
            display_name = "silence only"

            def is_satisfied(self, config):
                return True

        protocol = AsymmetricNamingProtocol(8)
        population = Population(8)
        scheduler = RandomPairScheduler(population, seed=0)
        simulator = FluidSimulator(
            protocol, population, scheduler, SilenceOnly()
        )
        with pytest.warns(BackendFallbackWarning):
            simulator.run(uniform_initial(population), max_interactions=100)
        assert not simulator.last_run_native


class TestSmallPopulationsMatchLeapExactly:
    """Below the handoff floor there is nothing to integrate: the run
    is one stochastic leap phase consuming the identical randomness
    stream, so fluid must equal ``backend="leap"`` bit for bit."""

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_bit_identical_to_leap(self, seed):
        n = 512
        outcomes = {}
        for backend in ("leap", "fluid"):
            protocol = AsymmetricNamingProtocol(8)
            population = Population(n)
            scheduler = RandomPairScheduler(population, seed=seed)
            simulator = make_simulator(
                backend, protocol, population, scheduler, NamingProblem()
            )
            result = simulator.run(
                uniform_initial(population), max_interactions=50_000
            )
            outcomes[backend] = result_key(result)
        assert outcomes["fluid"] == outcomes["leap"]

    def test_no_ode_steps_below_the_floor(self):
        _, population, simulator = build(512)
        result = simulator.run(
            uniform_initial(population), max_interactions=50_000
        )
        assert simulator.last_run_native
        assert result.stats.ode_steps == 0
        assert result.stats.handoff_time == 0.0
        assert result.stats.handoff_backend == "leap"

    def test_sanitized_run_is_bit_identical(self):
        results = []
        for sanitize in (False, True):
            _, population, simulator = build(512, sanitize=sanitize)
            results.append(
                result_key(
                    simulator.run(
                        uniform_initial(population), max_interactions=50_000
                    )
                )
            )
        assert results[0] == results[1]


class TestOdeFastForward:
    def test_ode_engages_above_the_floor(self):
        n = 200_000
        _, population, simulator = build(n)
        result = simulator.run(
            uniform_initial(population), max_interactions=10 * n
        )
        assert simulator.last_run_native
        stats = result.stats
        assert stats.ode_steps > 0
        assert 0.0 < stats.handoff_time <= 10 * n
        assert stats.handoff_backend == "leap"
        assert "ODE steps" in str(stats)
        # 8 names cannot cover 200,000 agents: the budget is exhausted.
        assert not result.converged
        assert result.interactions == 10 * n

    def test_final_configuration_conserves_population(self):
        n = 100_000
        protocol, population, simulator = build(n)
        result = simulator.run(
            uniform_initial(population), max_interactions=5 * n
        )
        final = result.final_configuration
        assert len(final.mobile_states) == n
        assert set(final.mobile_states) <= protocol.mobile_state_space()
        assert sum(simulator.last_counts) == n

    def test_spread_start_is_a_fixed_point(self):
        # The round-robin spread start has identical drift on every
        # state by symmetry: the step rule immediately covers the whole
        # budget, so the run is one stall-handoff plus a leap endgame.
        n = 100_000
        protocol = AsymmetricNamingProtocol(8)
        population = Population(n)
        scheduler = RandomPairScheduler(population, seed=0)
        simulator = FluidSimulator(
            protocol, population, scheduler, NamingProblem()
        )
        space = sorted(protocol.mobile_state_space())
        states = tuple(space[i % len(space)] for i in range(n))
        result = simulator.run(
            Configuration(states, None), max_interactions=5 * n
        )
        assert result.stats.ode_steps == 0
        assert result.stats.handoff_time == 0.0

    def test_raise_on_timeout(self):
        _, population, simulator = build(50_000, bound=4)
        with pytest.raises(ConvergenceError, match="did not converge"):
            simulator.run(
                uniform_initial(population),
                max_interactions=50_000,
                raise_on_timeout=True,
            )
        assert simulator.last_run_native


class TestRunCounts:
    def test_negative_count_raises(self):
        _, _, simulator = build(8)
        with pytest.raises(SimulationError, match="negative count"):
            simulator.run_counts({0: -1, 1: 9})

    def test_unknown_state_raises(self):
        _, _, simulator = build(8)
        with pytest.raises(SimulationError, match="state space"):
            simulator.run_counts({"rogue": 8})

    def test_sum_mismatch_raises(self):
        _, _, simulator = build(8)
        with pytest.raises(SimulationError, match="sum to 7"):
            simulator.run_counts({0: 7})

    def test_leader_population_raises_instead_of_delegating(self):
        protocol = GlobalNamingProtocol(4)
        population = Population(4, has_leader=True)
        scheduler = RandomPairScheduler(population, seed=0)
        simulator = FluidSimulator(
            protocol, population, scheduler, NamingProblem()
        )
        with pytest.raises(SimulationError, match="no mean-field limit"):
            simulator.run_counts({0: 4})

    def test_counts_native_result_without_materialization(self):
        n = 100_000
        _, _, simulator = build(n)
        result = simulator.run_counts({0: n}, max_interactions=5 * n)
        assert result.final_configuration is None
        assert result.final_counts is not None
        assert sum(result.final_counts.values()) == n
        assert "counts-native" in str(result)
        with pytest.raises(SimulationError, match="counts-native"):
            result.names()

    def test_materialized_result_matches_final_counts(self):
        n = 2_000
        _, _, simulator = build(n)
        result = simulator.run_counts(
            {0: n}, max_interactions=10 * n, materialize=True
        )
        final = result.final_configuration
        assert final is not None
        assert len(final.mobile_states) == n

    def test_mega_population_completes_full_horizon(self):
        # N = 10^10: an agent tuple would need ~80 GB, but the
        # counts-native fluid pipeline finishes the full 10 N naming
        # horizon in O(pairs + states) per ODE step.
        n = 10_000_000_000
        _, _, simulator = build(n)
        result = simulator.run_counts({0: n}, max_interactions=10 * n)
        assert simulator.last_run_native
        assert result.interactions == 10 * n
        assert not result.converged  # 8 names, 10^10 agents
        assert sum(result.final_counts.values()) == n
        assert result.stats.ode_steps > 0


class TestCertifiedHandoff:
    """The KS gates behind the 'certified stochastic handoff' claim:
    fluid-with-handoff and pure leap must agree in distribution, in the
    regime where the ODE carries most of the run (large N) and in the
    regime where handoff fires mid-endgame (near silence)."""

    def test_large_n_distribution_matches_pure_leap(self):
        """N = 20,000 from the uniform all-zero start: the ODE
        fast-forwards the cascade transient (asserted via
        ``ode_steps``), hands off near the fixed point, and the
        endgame's final count of the lowest state must match pure
        leap's within the KS bound."""
        n = 20_000
        budget = 40 * n
        seeds = range(30)
        protocol = AsymmetricNamingProtocol(8)
        lowest = sorted(protocol.mobile_state_space())[0]
        samples = {"leap": [], "fluid": []}
        ode_total = 0
        for backend in samples:
            for seed in seeds:
                population = Population(n)
                scheduler = RandomPairScheduler(population, seed=seed)
                simulator = make_simulator(
                    backend, protocol, population, scheduler, NamingProblem()
                )
                result = simulator.run(
                    uniform_initial(population), max_interactions=budget
                )
                if backend == "fluid":
                    ode_total += result.stats.ode_steps
                samples[backend].append(
                    sum(1 for s in result.names() if s == lowest)
                )
        assert ode_total > 0, "the ODE fast-forward never engaged"
        d_stat = ks_statistic(samples["leap"], samples["fluid"])
        bound = ks_bound(len(samples["leap"]), len(samples["fluid"]))
        assert d_stat < bound, (
            f"KS statistic {d_stat:.3f} exceeds bound {bound:.3f}"
        )

    def test_near_silence_convergence_times_match_pure_leap(self):
        """N = 64 with 64 names and a low handoff floor: the ODE runs
        until the initial species dwindles below the floor, then the
        stochastic endgame resolves the last duplicates into silence.
        Convergence-time distributions must match pure leap's."""
        n = 64
        seeds = range(40)
        samples = {"leap": [], "fluid": []}
        ode_total = 0
        for backend in samples:
            for seed in seeds:
                protocol = AsymmetricNamingProtocol(n)
                population = Population(n)
                scheduler = RandomPairScheduler(population, seed=seed)
                if backend == "fluid":
                    simulator = FluidSimulator(
                        protocol,
                        population,
                        scheduler,
                        NamingProblem(),
                        handoff_floor=8,
                    )
                else:
                    simulator = LeapSimulator(
                        protocol, population, scheduler, NamingProblem()
                    )
                result = simulator.run(
                    uniform_initial(population), max_interactions=2_000_000
                )
                assert result.converged
                if backend == "fluid":
                    ode_total += result.stats.ode_steps
                samples[backend].append(result.convergence_interaction)
        assert ode_total > 0, "the ODE fast-forward never engaged"
        d_stat = ks_statistic(samples["leap"], samples["fluid"])
        bound = ks_bound(len(samples["leap"]), len(samples["fluid"]))
        assert d_stat < bound, (
            f"KS statistic {d_stat:.3f} exceeds bound {bound:.3f}"
        )


class TestEnsembleIntegration:
    def test_auto_resolves_to_fluid_at_fluid_scale(self):
        n = FLUID_MIN_POPULATION
        protocol = AsymmetricNamingProtocol(8)
        population = Population(n)

        def scheduler_factory(population, seed):
            return RandomPairScheduler(population, seed=seed)

        def initial_factory(population, seed):
            return Configuration.uniform(population, 0)

        ensemble = run_ensemble(
            protocol,
            population,
            scheduler_factory,
            initial_factory,
            NamingProblem(),
            seeds=range(2),
            max_interactions=2 * n,
            backend="auto",
        )
        assert len(ensemble.results) == 2
        stats = ensemble.stats
        assert stats.ode_steps is not None and stats.ode_steps > 0
        assert stats.handoff_time is not None
        assert stats.handoff_backend == "leap"
