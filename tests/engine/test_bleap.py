"""Tests for the batched tau-leaping ensemble backend
(:mod:`repro.engine.bleap`).

The bleap engine fuses the lockstep batch kernel with per-row adaptive
tau-leaping, so the tests pin both inherited contracts: seed identity
(a replicate's result is a function of its seed alone, independent of
batch width and process chunking - the batch engine's contract) and
approximate distribution-equivalence under KS-style bounds in both
regimes (the leap engine's contract): against the per-run leap backend
in the leap-friendly large-N regime, and against the exact batch
backend in the SSA-fallback regimes (small N, near-silence).  The
structured ``bleap -> batch`` fallback and its pickling across
``n_jobs > 1`` process boundaries are covered at the end.
"""

from __future__ import annotations

import math
import multiprocessing
import pickle
import warnings

import pytest

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.engine import sanitize as _sanitize
from repro.engine.bleap import BatchedLeapSimulator
from repro.engine.configuration import Configuration
from repro.engine.ensemble import run_ensemble
from repro.engine.fast import make_simulator
from repro.engine.leap import DEFAULT_LEAP_EPS, DEFAULT_MIN_TAU
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.errors import (
    BackendFallbackWarning,
    ConvergenceError,
    SanitizerError,
    SimulationError,
)
from repro.schedulers.random_pair import RandomPairScheduler
from repro.schedulers.round_robin import RoundRobinScheduler
from tests.engine.ks import ks_bound, ks_statistic


def build(n, bound=8, seed=0, problem=True, **kwargs):
    """A bleap simulator for the asymmetric naming protocol."""
    protocol = AsymmetricNamingProtocol(bound)
    population = Population(n)
    scheduler = RandomPairScheduler(population, seed=seed)
    simulator = BatchedLeapSimulator(
        protocol,
        population,
        scheduler,
        NamingProblem() if problem else None,
        **kwargs,
    )
    return protocol, population, simulator


def uniform_initial(population, state=0):
    return Configuration.uniform(population, state)


def spread_initial(protocol, population):
    """States dealt round-robin: stationary null/non-null mix."""
    space = sorted(protocol.mobile_state_space())
    n = population.size
    states = tuple(space) * (n // len(space)) + tuple(space[: n % len(space)])
    return Configuration(states, None)


def result_key(result):
    """Everything but wall-clock stats (which legitimately vary)."""
    return (
        result.converged,
        result.convergence_interaction,
        result.interactions,
        result.non_null_interactions,
        result.final_configuration,
    )


# Module-level (picklable) factories for the process-parallel tests.
def _scheduler_factory(population, seed):
    return RandomPairScheduler(population, seed=seed)


def _initial_factory(population, seed):
    return Configuration.uniform(population, 0)


def _round_robin_factory(population, seed):
    return RoundRobinScheduler(population, seed=seed)


# One duplicate pair in an otherwise-distinct configuration: a single
# event away from silence, the sparse endgame where bleap's adaptive
# tau collapses and rows drop to exact SSA.
def _near_silent_initial(population, seed):
    n = population.size
    states = tuple(range(n - 1)) + (n - 2,)
    return Configuration(states, None)


class TestConstruction:
    def test_make_simulator_builds_bleap_backend(self):
        protocol = AsymmetricNamingProtocol(4)
        population = Population(5)
        scheduler = RandomPairScheduler(population, seed=0)
        simulator = make_simulator(
            "bleap", protocol, population, scheduler, NamingProblem()
        )
        assert isinstance(simulator, BatchedLeapSimulator)
        assert simulator.compiled
        assert simulator.leap_eps == DEFAULT_LEAP_EPS
        assert simulator.min_tau == DEFAULT_MIN_TAU

    def test_make_simulator_forwards_leap_eps(self):
        protocol = AsymmetricNamingProtocol(4)
        population = Population(5)
        scheduler = RandomPairScheduler(population, seed=0)
        simulator = make_simulator(
            "bleap",
            protocol,
            population,
            scheduler,
            NamingProblem(),
            leap_eps=0.01,
        )
        assert simulator.leap_eps == 0.01

    def test_invalid_knobs_rejected(self):
        with pytest.raises(SimulationError, match="leap_eps"):
            build(5, leap_eps=1.5)
        with pytest.raises(SimulationError, match="min_tau"):
            build(5, min_tau=0)

    def test_wrong_population_size_rejected(self):
        _, _, simulator = build(5)
        with pytest.raises(SimulationError, match="agents"):
            simulator.run(uniform_initial(Population(4)))

    def test_mismatched_replicate_lists_rejected(self):
        _, population, simulator = build(5)
        with pytest.raises(SimulationError, match="schedulers"):
            simulator.run_replicates(
                [uniform_initial(population)],
                [],
            )


class TestSingleRun:
    def test_small_population_converges_exactly(self):
        """At N = 6 every window collapses: the run is served by the
        exact SSA path and must produce a valid naming."""
        _, population, simulator = build(6, seed=3)
        result = simulator.run(
            uniform_initial(population), max_interactions=200_000
        )
        assert simulator.last_run_native
        assert result.converged
        names = result.names()
        assert len(set(names)) == len(names)
        stats = result.stats
        assert stats.leaps == 0
        assert stats.ssa_fallback_rows == 1

    def test_large_population_engages_multinomial_path(self):
        """At N = 20,000 under a mid-flight budget the multinomial
        window path must carry the run (``stats.leaps > 0``)."""
        protocol, population, simulator = build(20_000)
        result = simulator.run(
            spread_initial(protocol, population), max_interactions=100_000
        )
        assert simulator.last_run_native
        assert result.interactions == 100_000
        stats = result.stats
        assert stats.leaps > 0
        assert stats.mean_tau > 0
        assert stats.ssa_fallback_rows in (0, 1)

    def test_raise_on_timeout(self):
        protocol, population, simulator = build(20_000)
        with pytest.raises(ConvergenceError):
            simulator.run(
                spread_initial(protocol, population),
                max_interactions=1_000,
                raise_on_timeout=True,
            )


class TestSeedIdentity:
    """A replicate's result is a function of its seed alone."""

    def test_batch_width_cannot_change_results(self):
        protocol, population, simulator = build(1_000)
        initial = spread_initial(protocol, population)
        schedulers = [
            RandomPairScheduler(population, seed=s) for s in range(10)
        ]
        whole = simulator.run_replicates(
            [initial] * 10, schedulers, max_interactions=50_000
        )
        halves = simulator.run_replicates(
            [initial] * 5, schedulers[:5], max_interactions=50_000
        ) + simulator.run_replicates(
            [initial] * 5, schedulers[5:], max_interactions=50_000
        )
        assert [result_key(r) for r in whole] == [
            result_key(r) for r in halves
        ]

    def test_single_run_matches_batch_row(self):
        protocol, population, simulator = build(1_000, seed=7)
        initial = spread_initial(protocol, population)
        single = simulator.run(initial, max_interactions=50_000)
        row = simulator.run_replicates(
            [initial],
            [RandomPairScheduler(population, seed=7)],
            max_interactions=50_000,
        )[0]
        assert result_key(single) == result_key(row)

    def test_serial_matches_parallel_chunking(self):
        """``n_jobs`` chunking cannot change any result."""
        protocol = AsymmetricNamingProtocol(8)
        population = Population(1_000)
        seeds = list(range(9))
        runs = {}
        for n_jobs in (1, 3):
            ensemble = run_ensemble(
                protocol,
                population,
                _scheduler_factory,
                _initial_factory,
                NamingProblem(),
                seeds=seeds,
                max_interactions=50_000,
                backend="bleap",
                n_jobs=n_jobs,
            )
            assert ensemble.seeds == seeds
            runs[n_jobs] = [result_key(r) for r in ensemble.results]
        assert runs[1] == runs[3]


class TestStatisticalEquivalence:
    def test_convergence_times_match_batch_in_exact_regime(self):
        """KS check against the exact batch engine at N = 8, where
        every bleap row is served by the SSA fallback."""
        protocol = AsymmetricNamingProtocol(8)
        population = Population(8)
        seeds = range(40)
        samples = {}
        for backend in ("batch", "bleap"):
            ensemble = run_ensemble(
                protocol,
                population,
                _scheduler_factory,
                _initial_factory,
                NamingProblem(),
                seeds=seeds,
                max_interactions=200_000,
                backend=backend,
            )
            assert ensemble.convergence_rate == 1.0
            samples[backend] = [
                r.convergence_interaction for r in ensemble.results
            ]
        d_stat = ks_statistic(samples["batch"], samples["bleap"])
        bound = ks_bound(len(samples["batch"]), len(samples["bleap"]))
        assert d_stat < bound, (
            f"KS statistic {d_stat:.3f} exceeds bound {bound:.3f}"
        )

    def test_convergence_times_match_batch_near_silence(self):
        """KS check in the sparse endgame: one duplicate pair in an
        otherwise-distinct configuration, where the expected event rate
        is ~2/N^2 and bleap must drop to exact SSA stepping."""
        protocol = AsymmetricNamingProtocol(256)
        population = Population(200)
        seeds = range(30)
        samples = {}
        ssa_rows = 0
        for backend in ("batch", "bleap"):
            ensemble = run_ensemble(
                protocol,
                population,
                _scheduler_factory,
                _near_silent_initial,
                NamingProblem(),
                seeds=seeds,
                max_interactions=400_000,
                backend=backend,
            )
            assert ensemble.convergence_rate == 1.0
            if backend == "bleap":
                ssa_rows = ensemble.stats.ssa_fallback_rows
            samples[backend] = [
                r.convergence_interaction for r in ensemble.results
            ]
        assert ssa_rows > 0, "the exact-SSA fallback never engaged"
        d_stat = ks_statistic(samples["batch"], samples["bleap"])
        bound = ks_bound(len(samples["batch"]), len(samples["bleap"]))
        assert d_stat < bound, (
            f"KS statistic {d_stat:.3f} exceeds bound {bound:.3f}"
        )

    def test_final_configuration_statistic_matches_leap(self):
        """KS check against the per-run leap backend in the leaping
        regime: at N = 20,000 under a mid-flight budget both engines
        run on the multinomial path, and the distribution of the lowest
        state's final count must agree within the KS bound."""
        n = 20_000
        budget = 5 * n
        seeds = range(30)
        protocol = AsymmetricNamingProtocol(8)
        lowest = sorted(protocol.mobile_state_space())[0]
        samples = {"leap": [], "bleap": []}
        leaps_taken = 0
        population = Population(n)
        initial = spread_initial(protocol, population)
        for seed in seeds:
            scheduler = RandomPairScheduler(population, seed=seed)
            simulator = make_simulator(
                "leap", protocol, population, scheduler, NamingProblem()
            )
            result = simulator.run(initial, max_interactions=budget)
            samples["leap"].append(
                sum(1 for s in result.names() if s == lowest)
            )
        _, _, simulator = build(n)
        results = simulator.run_replicates(
            [initial] * len(seeds),
            [RandomPairScheduler(population, seed=s) for s in seeds],
            max_interactions=budget,
        )
        for result in results:
            leaps_taken += result.stats.leaps
            samples["bleap"].append(
                sum(1 for s in result.names() if s == lowest)
            )
        assert leaps_taken > 0, "the multinomial path never engaged"
        d_stat = ks_statistic(samples["leap"], samples["bleap"])
        bound = ks_bound(len(samples["leap"]), len(samples["bleap"]))
        assert d_stat < bound, (
            f"KS statistic {d_stat:.3f} exceeds bound {bound:.3f}"
        )

    def test_final_configuration_statistic_matches_batch(self):
        """KS check against the exact batch engine in the leaping
        regime - the cross-engine counterpart of the leap comparison
        above, so the approximation is pinned to an exact lockstep
        reference too."""
        n = 20_000
        budget = 5 * n
        seeds = range(30)
        protocol = AsymmetricNamingProtocol(8)
        lowest = sorted(protocol.mobile_state_space())[0]
        population = Population(n)
        initial = spread_initial(protocol, population)
        samples = {}
        for backend in ("batch", "bleap"):
            simulator = make_simulator(
                backend,
                protocol,
                population,
                RandomPairScheduler(population, seed=0),
                NamingProblem(),
            )
            results = simulator.run_replicates(
                [initial] * len(seeds),
                [RandomPairScheduler(population, seed=s) for s in seeds],
                max_interactions=budget,
            )
            samples[backend] = [
                sum(1 for s in r.names() if s == lowest) for r in results
            ]
        d_stat = ks_statistic(samples["batch"], samples["bleap"])
        bound = ks_bound(len(samples["batch"]), len(samples["bleap"]))
        assert d_stat < bound, (
            f"KS statistic {d_stat:.3f} exceeds bound {bound:.3f}"
        )


class TestFallback:
    def test_non_uniform_scheduler_falls_back_structured(self):
        """A non-uniform scheduler trips the shared lockstep
        preconditions: bleap warns with structured attributes and
        delegates to batch, which cascades down the ladder."""
        protocol = AsymmetricNamingProtocol(8)
        population = Population(6)
        scheduler = RoundRobinScheduler(population, seed=0)
        simulator = BatchedLeapSimulator(
            protocol, population, scheduler, NamingProblem()
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = simulator.run(
                uniform_initial(population), max_interactions=100_000
            )
        assert not simulator.last_run_native
        assert result.converged
        fallbacks = [
            w.message
            for w in caught
            if isinstance(w.message, BackendFallbackWarning)
        ]
        assert fallbacks, "no fallback warning was emitted"
        first = fallbacks[0]
        assert first.backend == "bleap"
        assert first.delegate == "batch"
        assert "uniform-random" in first.reason
        # The delegate applies its own preconditions and continues down
        # the ladder with its own structured warning.
        assert any(w.backend == "batch" for w in fallbacks[1:])

    def test_fault_hook_falls_back(self):
        _, population, simulator = build(6)
        with pytest.warns(BackendFallbackWarning):
            result = simulator.run(
                uniform_initial(population),
                max_interactions=100_000,
                fault_hook=lambda interaction, config: None,
            )
        assert not simulator.last_run_native
        assert result.converged


class TestWarningAcrossProcesses:
    def test_warning_pickle_round_trip(self):
        original = BackendFallbackWarning(
            "bleap backend falling back to the batch simulator: reason",
            backend="bleap",
            delegate="batch",
            reason="reason",
        )
        clone = pickle.loads(pickle.dumps(original))
        assert isinstance(clone, BackendFallbackWarning)
        assert clone.args == original.args
        assert clone.backend == "bleap"
        assert clone.delegate == "batch"
        assert clone.reason == "reason"

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="workers must inherit the parent's warning filters",
    )
    def test_escalated_fallback_crosses_process_boundary(self):
        """``simplefilter("error")`` composed with ``n_jobs > 1``: the
        fallback warning raised inside a worker must reach the parent
        with its structured attributes intact (exercising
        ``BackendFallbackWarning.__reduce__``)."""
        protocol = AsymmetricNamingProtocol(8)
        population = Population(6)
        with warnings.catch_warnings():
            warnings.simplefilter("error", BackendFallbackWarning)
            with pytest.raises(BackendFallbackWarning) as excinfo:
                run_ensemble(
                    protocol,
                    population,
                    _round_robin_factory,
                    _initial_factory,
                    NamingProblem(),
                    seeds=range(4),
                    max_interactions=10_000,
                    backend="bleap",
                    n_jobs=2,
                )
        assert excinfo.value.backend == "bleap"
        assert excinfo.value.delegate == "batch"
        assert "uniform-random" in excinfo.value.reason


class TestSanitize:
    def test_sanitized_run_is_bit_identical(self):
        protocol = AsymmetricNamingProtocol(8)
        population = Population(1_000)
        initial = spread_initial(protocol, population)
        results = []
        for sanitize in (False, True):
            _, _, simulator = build(1_000, seed=5, sanitize=sanitize)
            results.append(
                simulator.run(initial, max_interactions=50_000)
            )
        assert result_key(results[0]) == result_key(results[1])

    def test_sanitizer_checks_run_with_bleap_backend_name(
        self, monkeypatch
    ):
        seen = []
        original = _sanitize.check_counts_rows

        def spy(backend, rows, row_ids, expected_total, step):
            seen.append(backend)
            return original(backend, rows, row_ids, expected_total, step)

        monkeypatch.setattr(_sanitize, "check_counts_rows", spy)
        protocol, population, simulator = build(1_000, sanitize=True)
        simulator.run(
            spread_initial(protocol, population), max_interactions=50_000
        )
        assert seen and set(seen) == {"bleap"}

    def test_injected_corruption_is_caught(self, monkeypatch):
        """A corrupted counts matrix must raise a structured
        SanitizerError at the next window refresh."""
        protocol, population, simulator = build(1_000, sanitize=True)

        calls = {"n": 0}
        original = _sanitize.check_counts_rows

        def corrupt(backend, rows, row_ids, expected_total, step):
            original(backend, rows, row_ids, expected_total, step)
            if calls["n"] == 0 and rows.size:
                # Simulate a kernel corrupting a count between two
                # refreshes: the next check must trip.
                rows[0, 0] += 1
                calls["n"] += 1
                original(backend, rows, row_ids, expected_total, step)

        monkeypatch.setattr(_sanitize, "check_counts_rows", corrupt)
        with pytest.raises(SanitizerError) as excinfo:
            simulator.run(
                spread_initial(protocol, population),
                max_interactions=50_000,
            )
        assert excinfo.value.backend == "bleap"
        assert excinfo.value.invariant == "population-size"
