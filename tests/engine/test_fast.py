"""Differential tests: the fast backend versus the reference simulator.

The tentpole guarantee of :mod:`repro.engine.fast` is bit-identity: for
any protocol, seed and budget the two backends must return *equal*
``SimulationResult`` dataclasses (converged flag, interaction counts,
convergence interaction, final configuration - everything).  These tests
enforce that over fixed protocol suites, Hypothesis-generated random
table protocols, traces, observers and parallel ensembles.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.global_naming import GlobalNamingProtocol
from repro.core.selfstab_naming import SelfStabilizingNamingProtocol
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.counts import CountSimulator
from repro.engine.ensemble import run_ensemble
from repro.engine.fast import (
    BACKENDS,
    FastSimulator,
    compile_table,
    make_simulator,
    table_fingerprint,
)
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.protocol import TableProtocol
from repro.engine.simulator import Simulator
from repro.engine.trace import Trace
from repro.errors import BackendFallbackWarning, SimulationError
from repro.schedulers.adversarial import HomonymPreservingScheduler
from repro.schedulers.base import Scheduler
from repro.schedulers.random_pair import RandomPairScheduler


def _initial_for(protocol, population, seed, uniform=False):
    rng = random.Random(seed)
    mobile_space = sorted(protocol.mobile_state_space())
    leader = (
        protocol.initial_leader_state() if population.has_leader else None
    )
    if uniform:
        value = protocol.initial_mobile_state()
        if value is None:
            value = mobile_space[0]
        return Configuration.uniform(population, value, leader)
    mobiles = tuple(
        rng.choice(mobile_space) for _ in range(population.n_mobile)
    )
    return Configuration.from_states(population, mobiles, leader)


def run_both(protocol, n, seed, budget=30_000, uniform=False, problem=...):
    """Run both backends on the same (protocol, N, seed); return results."""
    if problem is ...:
        problem = NamingProblem()
    results = {}
    for backend in ("reference", "fast"):
        population = Population(n, protocol.requires_leader)
        scheduler = RandomPairScheduler(population, seed=seed)
        simulator = make_simulator(
            backend, protocol, population, scheduler, problem
        )
        initial = _initial_for(protocol, population, seed, uniform)
        results[backend] = simulator.run(initial, max_interactions=budget)
    return results["reference"], results["fast"]


class TestDifferentialFixedProtocols:
    @pytest.mark.parametrize("seed", range(8))
    def test_leaderless_asymmetric(self, seed):
        ref, fast = run_both(AsymmetricNamingProtocol(5), 5, seed)
        assert ref == fast

    @pytest.mark.parametrize("seed", range(4))
    def test_leaderless_symmetric(self, seed):
        ref, fast = run_both(SymmetricGlobalNamingProtocol(4), 4, seed)
        assert ref == fast

    @pytest.mark.parametrize("seed", range(4))
    def test_leader_protocol(self, seed):
        ref, fast = run_both(GlobalNamingProtocol(4), 3, seed)
        assert ref == fast

    @pytest.mark.parametrize("seed", range(4))
    def test_self_stabilizing_leader_protocol(self, seed):
        ref, fast = run_both(SelfStabilizingNamingProtocol(4), 4, seed)
        assert ref == fast

    @pytest.mark.parametrize("seed", range(3))
    def test_large_population_batched_sampler(self, seed):
        # N > 21 exercises the inlined getrandbits rejection sampler.
        ref, fast = run_both(
            AsymmetricNamingProtocol(30), 30, seed, budget=50_000
        )
        assert ref == fast

    def test_no_problem_runs_whole_budget(self):
        ref, fast = run_both(
            AsymmetricNamingProtocol(5), 5, seed=3, budget=2_000, problem=None
        )
        assert ref == fast
        assert ref.interactions == 2_000

    def test_generic_problem_subclass_matches(self):
        # A NamingProblem *subclass* must not take the specialized O(1)
        # predicate path; the generic path must still be bit-identical.
        class StrictNaming(NamingProblem):
            """Identity subclass; forces the generic check path."""

        ref, fast = run_both(
            AsymmetricNamingProtocol(5), 5, seed=1, problem=StrictNaming()
        )
        assert ref == fast
        assert ref.converged


def _table_protocols(draw):
    k = draw(st.integers(min_value=2, max_value=4))
    states = list(range(k))
    table = {}
    for p in states:
        for q in states:
            if draw(st.booleans()):
                p2 = draw(st.sampled_from(states))
                q2 = draw(st.sampled_from(states))
                table[(p, q)] = (p2, q2)
    return TableProtocol(table, states)


class TestDifferentialRandomProtocols:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_random_table_protocols_agree(self, data):
        protocol = _table_protocols(data.draw)
        n = data.draw(st.integers(min_value=2, max_value=12))
        seed = data.draw(st.integers(min_value=0, max_value=2**16))
        ref, fast = run_both(protocol, n, seed, budget=2_000)
        assert ref == fast


class TestDifferentialInstrumentation:
    def test_traces_identical(self):
        protocol = AsymmetricNamingProtocol(5)
        traces = {}
        results = {}
        for backend in ("reference", "fast"):
            population = Population(5)
            scheduler = RandomPairScheduler(population, seed=7)
            simulator = make_simulator(
                backend, protocol, population, scheduler, NamingProblem()
            )
            trace = Trace(capacity=None)
            results[backend] = simulator.run(
                Configuration.uniform(population, 0),
                max_interactions=5_000,
                trace=trace,
            )
            traces[backend] = trace
        assert traces["fast"].records == traces["reference"].records
        # Results minus the trace objects themselves must match too.
        results["fast"].trace = results["reference"].trace = None
        assert results["fast"] == results["reference"]

    def test_observers_see_identical_streams(self):
        protocol = AsymmetricNamingProtocol(5)
        seen = {}
        for backend in ("reference", "fast"):
            population = Population(5)
            scheduler = RandomPairScheduler(population, seed=11)
            simulator = make_simulator(
                backend, protocol, population, scheduler, NamingProblem()
            )
            events = []
            simulator.run(
                Configuration.uniform(population, 0),
                max_interactions=5_000,
                observer=lambda i, c: events.append((i, c)),
            )
            seen[backend] = events
        assert seen["fast"] == seen["reference"]


class TestBatchSamplingStreamIdentity:
    @pytest.mark.parametrize("n", [2, 5, 21, 22, 64, 100])
    def test_next_pairs_matches_next_pair_stream(self, n):
        population = Population(n)
        a = RandomPairScheduler(population, seed=13)
        b = RandomPairScheduler(population, seed=13)
        scalar = [a.next_pair(None) for _ in range(500)]
        batched = b.next_pairs(None, 500)
        assert scalar == batched

    @pytest.mark.parametrize("n", [5, 40])
    def test_interleaved_batches_continue_the_stream(self, n):
        population = Population(n)
        a = RandomPairScheduler(population, seed=29)
        b = RandomPairScheduler(population, seed=29)
        scalar = [a.next_pair(None) for _ in range(120)]
        batched = (
            b.next_pairs(None, 50)
            + [b.next_pair(None)]
            + b.next_pairs(None, 69)
        )
        assert scalar == batched

    def test_default_next_pairs_delegates_to_next_pair(self):
        class Fixed(Scheduler):
            """Deterministic two-agent scheduler for the base-class hook."""

            def next_pair(self, config):
                return (0, 1)

        scheduler = Fixed(Population(2))
        assert scheduler.next_pairs(None, 3) == [(0, 1)] * 3


class TestFallbacks:
    def test_adversarial_scheduler_falls_back(self):
        protocol = SymmetricGlobalNamingProtocol(4)
        population = Population(4)
        scheduler = HomonymPreservingScheduler(population, protocol, seed=0)
        simulator = FastSimulator(
            protocol, population, scheduler, NamingProblem()
        )
        with pytest.warns(
            BackendFallbackWarning, match="inspects the configuration"
        ):
            result = simulator.run(
                Configuration.uniform(population, 1), max_interactions=500
            )
        assert not simulator.last_run_fast
        assert not result.converged  # the adversary preserves homonyms

    def test_fault_hook_falls_back(self):
        protocol = AsymmetricNamingProtocol(4)
        population = Population(4)
        scheduler = RandomPairScheduler(population, seed=0)
        simulator = FastSimulator(
            protocol, population, scheduler, NamingProblem()
        )
        calls = []

        def hook(interaction, config):
            calls.append(interaction)
            return None

        with pytest.warns(BackendFallbackWarning, match="fault hooks"):
            simulator.run(
                Configuration.uniform(population, 0),
                max_interactions=50,
                fault_hook=hook,
            )
        assert not simulator.last_run_fast
        assert calls

    def test_oversized_state_space_falls_back(self):
        protocol = AsymmetricNamingProtocol(5)
        population = Population(5)
        scheduler = RandomPairScheduler(population, seed=2)
        simulator = FastSimulator(
            protocol,
            population,
            scheduler,
            NamingProblem(),
            compile_limit=1,
        )
        assert not simulator.compiled
        with pytest.warns(
            BackendFallbackWarning, match="could not be compiled"
        ):
            result = simulator.run(
                Configuration.uniform(population, 0),
                max_interactions=30_000,
            )
        assert not simulator.last_run_fast
        # Fallback still matches a plain reference run.
        reference = Simulator(
            protocol,
            population,
            RandomPairScheduler(population, seed=2),
            NamingProblem(),
        )
        pop2 = reference.population
        assert result == reference.run(
            Configuration.uniform(pop2, 0), max_interactions=30_000
        )

    def test_out_of_space_initial_state_falls_back(self):
        protocol = AsymmetricNamingProtocol(4)
        population = Population(3)
        scheduler = RandomPairScheduler(population, seed=0)
        simulator = FastSimulator(
            protocol, population, scheduler, NamingProblem()
        )
        rogue = Configuration.from_states(population, (0, 1, "rogue"))
        with pytest.warns(
            BackendFallbackWarning, match="outside the protocol's declared"
        ):
            simulator.run(rogue, max_interactions=100)
        assert not simulator.last_run_fast

    def test_uncompilable_protocol_returns_none(self):
        class Unbounded(AsymmetricNamingProtocol):
            """State space that refuses enumeration."""

            def mobile_state_space(self):
                raise NotImplementedError("unbounded")

        assert compile_table(Unbounded(4)) is None

    def test_size_mismatch_raises_like_reference(self):
        protocol = AsymmetricNamingProtocol(4)
        population = Population(4)
        scheduler = RandomPairScheduler(population, seed=0)
        simulator = FastSimulator(
            protocol, population, scheduler, NamingProblem()
        )
        wrong = Configuration.uniform(Population(3), 0)
        with pytest.raises(SimulationError, match="3 agents"):
            simulator.run(wrong)


class TestBackendRegistry:
    def test_registry_contents(self):
        from repro.engine.batch import BatchedEnsembleSimulator
        from repro.engine.bleap import BatchedLeapSimulator
        from repro.engine.fluid import FluidSimulator
        from repro.engine.leap import LeapSimulator

        assert BACKENDS == {
            "reference": Simulator,
            "fast": FastSimulator,
            "counts": CountSimulator,
            "batch": BatchedEnsembleSimulator,
            "leap": LeapSimulator,
            "bleap": BatchedLeapSimulator,
            "fluid": FluidSimulator,
        }

    def test_make_simulator_builds_each(self):
        protocol = AsymmetricNamingProtocol(4)
        population = Population(4)
        for backend, cls in BACKENDS.items():
            scheduler = RandomPairScheduler(population, seed=0)
            assert isinstance(
                make_simulator(
                    backend, protocol, population, scheduler, NamingProblem()
                ),
                cls,
            )

    def test_unknown_backend_rejected(self):
        protocol = AsymmetricNamingProtocol(4)
        population = Population(4)
        scheduler = RandomPairScheduler(population, seed=0)
        with pytest.raises(SimulationError, match="unknown simulation"):
            make_simulator("turbo", protocol, population, scheduler)


def _sched_factory(population, seed):
    return RandomPairScheduler(population, seed=seed)


def _init_factory(population, seed):
    return Configuration.uniform(population, 0)


class TestParallelEnsembles:
    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_n_jobs_results_seed_identical_to_serial(self, backend):
        protocol = AsymmetricNamingProtocol(5)
        population = Population(5)
        runs = {}
        for n_jobs in (1, 2):
            runs[n_jobs] = run_ensemble(
                protocol,
                population,
                _sched_factory,
                _init_factory,
                NamingProblem(),
                seeds=range(4),
                max_interactions=50_000,
                backend=backend,
                n_jobs=n_jobs,
            )
        assert runs[1].seeds == runs[2].seeds
        assert runs[1].results == runs[2].results

    def test_backends_agree_within_ensembles(self):
        protocol = AsymmetricNamingProtocol(5)
        population = Population(5)
        per_backend = {
            backend: run_ensemble(
                protocol,
                population,
                _sched_factory,
                _init_factory,
                NamingProblem(),
                seeds=range(5),
                max_interactions=50_000,
                backend=backend,
            )
            for backend in sorted(BACKENDS)
        }
        assert per_backend["fast"].results == per_backend["reference"].results

    def test_invalid_n_jobs_rejected(self):
        protocol = AsymmetricNamingProtocol(5)
        population = Population(5)
        with pytest.raises(ValueError, match="n_jobs"):
            run_ensemble(
                protocol,
                population,
                _sched_factory,
                _init_factory,
                NamingProblem(),
                seeds=range(2),
                n_jobs=0,
            )


class TestContentAddressedTableCache:
    """Compiled tables are shared by content, not object identity."""

    def test_equal_instances_share_one_table(self):
        table1 = compile_table(AsymmetricNamingProtocol(5))
        table2 = compile_table(AsymmetricNamingProtocol(5))
        assert table1 is table2

    def test_same_instance_is_cached(self):
        protocol = AsymmetricNamingProtocol(5)
        assert compile_table(protocol) is compile_table(protocol)

    def test_different_protocols_get_different_tables(self):
        table1 = compile_table(AsymmetricNamingProtocol(4))
        table2 = compile_table(AsymmetricNamingProtocol(5))
        assert table1 is not table2
        assert table1.fingerprint != table2.fingerprint

    def test_fingerprint_stable_across_instances(self):
        fp1 = table_fingerprint(AsymmetricNamingProtocol(6))
        fp2 = table_fingerprint(AsymmetricNamingProtocol(6))
        assert fp1 is not None
        assert fp1 == fp2

    def test_table_pickle_roundtrip_keeps_fingerprint(self):
        import pickle

        table = compile_table(AsymmetricNamingProtocol(5))
        clone = pickle.loads(pickle.dumps(table))
        assert clone.fingerprint == table.fingerprint
        assert clone.states == table.states
        assert clone.delta == table.delta

    def test_seeded_table_is_returned_without_recompiling(self):
        import pickle

        from repro.engine.fast import seed_compiled_table

        table = compile_table(AsymmetricNamingProtocol(7))
        clone = pickle.loads(pickle.dumps(table))
        seed_compiled_table(clone)
        # A *new* equal instance now resolves to the injected clone.
        assert compile_table(AsymmetricNamingProtocol(7)) is clone
