"""Tests for Population: identities, leader designation, pair iteration."""

import pytest

from repro.engine.population import Population
from repro.errors import ConfigurationError


class TestConstruction:
    def test_size_without_leader(self):
        assert Population(5).size == 5

    def test_size_with_leader(self):
        assert Population(5, has_leader=True).size == 6

    def test_rejects_empty_population(self):
        with pytest.raises(ConfigurationError):
            Population(0)

    def test_rejects_negative_population(self):
        with pytest.raises(ConfigurationError):
            Population(-3)


class TestLeaderDesignation:
    def test_leader_id_is_last(self):
        pop = Population(4, has_leader=True)
        assert pop.leader == 4
        assert pop.is_leader(4)

    def test_no_leader_returns_none(self):
        assert Population(4).leader is None

    def test_mobile_agents_exclude_leader(self):
        pop = Population(3, has_leader=True)
        assert pop.mobile_agents == (0, 1, 2)
        assert pop.agents == (0, 1, 2, 3)

    def test_mobile_agent_is_not_leader(self):
        pop = Population(3, has_leader=True)
        assert not pop.is_leader(0)

    def test_is_leader_false_without_leader(self):
        assert not Population(3).is_leader(2)


class TestPairIteration:
    def test_unordered_pair_count(self):
        pop = Population(4, has_leader=True)  # 5 agents
        pairs = list(pop.unordered_pairs())
        assert len(pairs) == 10
        assert len(set(map(frozenset, pairs))) == 10

    def test_ordered_pairs_double_unordered(self):
        pop = Population(3)
        ordered = list(pop.ordered_pairs())
        assert len(ordered) == 6
        assert all(x != y for x, y in ordered)
        assert len(set(ordered)) == 6

    def test_pair_count_formula(self):
        for n, leader in ((2, False), (5, True), (1, True)):
            pop = Population(n, has_leader=leader)
            assert pop.pair_count() == len(list(pop.unordered_pairs()))

    def test_pairs_cover_leader(self):
        pop = Population(2, has_leader=True)
        flat = {a for pair in pop.unordered_pairs() for a in pair}
        assert flat == {0, 1, 2}


class TestValidation:
    def test_validate_agent_accepts_members(self):
        pop = Population(2, has_leader=True)
        for agent in (0, 1, 2):
            pop.validate_agent(agent)

    def test_validate_agent_rejects_out_of_range(self):
        pop = Population(2)
        with pytest.raises(ConfigurationError):
            pop.validate_agent(2)
        with pytest.raises(ConfigurationError):
            pop.validate_agent(-1)
