"""Tests for the ensemble runner."""

import pytest

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.ensemble import run_ensemble
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.errors import ConvergenceError, SanitizerError
from repro.schedulers.random_pair import RandomPairScheduler


def make_parts(bound=5, n=5):
    protocol = AsymmetricNamingProtocol(bound)
    population = Population(n)
    scheduler_factory = lambda pop, seed: RandomPairScheduler(pop, seed=seed)
    initial_factory = lambda pop, seed: Configuration.uniform(pop, 0)
    return protocol, population, scheduler_factory, initial_factory


# Module-level (picklable) factories for the process-parallel tests.
def _scheduler_factory(population, seed):
    return RandomPairScheduler(population, seed=seed)


def _initial_factory(population, seed):
    return Configuration.uniform(population, 0)


class TestRunEnsemble:
    def test_one_result_per_seed(self):
        protocol, population, sf, inf = make_parts()
        ensemble = run_ensemble(
            protocol, population, sf, inf, NamingProblem(), seeds=range(7)
        )
        assert len(ensemble.results) == 7
        assert ensemble.seeds == list(range(7))

    def test_convergence_rate_and_summary(self):
        protocol, population, sf, inf = make_parts()
        ensemble = run_ensemble(
            protocol, population, sf, inf, NamingProblem(), seeds=range(5)
        )
        assert ensemble.convergence_rate == 1.0
        summary = ensemble.convergence_summary()
        assert summary.count == 5
        assert ensemble.failed_seeds() == []

    def test_budget_failures_recorded(self):
        protocol, population, sf, inf = make_parts()
        ensemble = run_ensemble(
            protocol,
            population,
            sf,
            inf,
            NamingProblem(),
            seeds=range(3),
            max_interactions=1,
        )
        assert ensemble.convergence_rate == 0.0
        assert ensemble.failed_seeds() == [0, 1, 2]
        with pytest.raises(ConvergenceError):
            ensemble.convergence_summary()

    def test_require_convergence_raises_with_seed(self):
        protocol, population, sf, inf = make_parts()
        with pytest.raises(ConvergenceError, match="seed 0"):
            run_ensemble(
                protocol,
                population,
                sf,
                inf,
                NamingProblem(),
                seeds=range(3),
                max_interactions=1,
                require_convergence=True,
            )

    def test_empty_ensemble(self):
        protocol, population, sf, inf = make_parts()
        ensemble = run_ensemble(
            protocol, population, sf, inf, NamingProblem(), seeds=[]
        )
        assert ensemble.convergence_rate == 0.0

    def test_seeds_drive_distinct_runs(self):
        protocol, population, sf, inf = make_parts()
        ensemble = run_ensemble(
            protocol, population, sf, inf, NamingProblem(), seeds=[1, 2]
        )
        a, b = ensemble.results
        # Same start, different schedules: final namings usually differ;
        # at minimum the executions are independent objects.
        assert a is not b
        assert a.converged and b.converged


class TestForwardedKnobs:
    def test_check_interval_forwarded(self):
        protocol, population, sf, inf = make_parts()
        ensemble = run_ensemble(
            protocol,
            population,
            sf,
            inf,
            NamingProblem(),
            seeds=range(3),
            check_interval=7,
        )
        for result in ensemble.results:
            assert result.converged
            assert result.convergence_interaction % 7 == 0

    def test_raise_on_timeout_forwarded(self):
        protocol, population, sf, inf = make_parts()
        with pytest.raises(ConvergenceError):
            run_ensemble(
                protocol,
                population,
                sf,
                inf,
                NamingProblem(),
                seeds=range(2),
                max_interactions=1,
                raise_on_timeout=True,
            )

    def test_fault_hook_forwarded(self):
        protocol, population, sf, inf = make_parts()
        calls = []

        def hook(interaction, config):
            if interaction == 3:
                calls.append(interaction)
            return None

        ensemble = run_ensemble(
            protocol,
            population,
            sf,
            inf,
            NamingProblem(),
            seeds=range(2),
            max_interactions=2_000,
            fault_hook=hook,
        )
        assert calls == [3, 3]
        assert len(ensemble.results) == 2

    def test_unknown_backend_rejected(self):
        from repro.errors import SimulationError

        protocol, population, sf, inf = make_parts()
        with pytest.raises(SimulationError, match="unknown simulation"):
            run_ensemble(
                protocol,
                population,
                sf,
                inf,
                NamingProblem(),
                seeds=range(1),
                backend="warp",
            )


class TestSeedChunking:
    """The parallel path ships seeds to workers in contiguous chunks;
    the split must be balanced, ordered and lossless."""

    def test_chunks_are_contiguous_and_balanced(self):
        from repro.engine.ensemble import _chunk_seeds

        seeds = list(range(11))
        chunks = _chunk_seeds(seeds, 4)
        assert len(chunks) == 4
        assert [s for chunk in chunks for s in chunk] == seeds
        sizes = [len(chunk) for chunk in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_seeds_drops_empty_chunks(self):
        """Surplus chunks are dropped, not dispatched as empty no-op
        worker tasks (regression: n_jobs larger than the ensemble)."""
        from repro.engine.ensemble import _chunk_seeds

        chunks = _chunk_seeds([1, 2], 5)
        assert chunks == [[1], [2]]
        assert all(chunk for chunk in chunks)

    def test_no_seeds_yields_no_chunks(self):
        from repro.engine.ensemble import _chunk_seeds

        assert _chunk_seeds([], 4) == []

    def test_chunked_serial_dispatch_matches_per_seed(self):
        """Running seeds through the chunk runner yields the same
        per-seed results as the one-seed-at-a-time path."""
        from repro.engine.ensemble import _run_chunk

        protocol, population, sf, inf = make_parts()
        common = (
            protocol,
            population,
            sf,
            inf,
            NamingProblem(),
            100_000,
            "reference",
            None,
            False,
            None,
            False,
        )
        chunked = _run_chunk((common, [0, 1, 2]))
        singles = [_run_chunk((common, [seed]))[0] for seed in (0, 1, 2)]
        assert chunked == singles


def result_key(result):
    return (
        result.converged,
        result.convergence_interaction,
        result.interactions,
        result.non_null_interactions,
        result.final_configuration,
    )


class TestBatchBackend:
    """The default ``"batch"`` path: lockstep batches, seed-identical
    across serial and process-parallel execution."""

    def test_batch_is_default_and_converges(self):
        protocol, population, sf, inf = make_parts(bound=8, n=8)
        ensemble = run_ensemble(
            protocol, population, sf, inf, NamingProblem(), seeds=range(6)
        )
        assert len(ensemble.results) == 6
        assert ensemble.convergence_rate == 1.0

    def test_serial_matches_parallel_and_overprovisioned_jobs(self):
        """n_jobs cannot change any result, even when it exceeds the
        number of seeds (the empty surplus chunks are dropped)."""
        protocol = AsymmetricNamingProtocol(8)
        population = Population(8)
        seeds = list(range(10))
        runs = {}
        for n_jobs in (1, 3, 16):
            ensemble = run_ensemble(
                protocol,
                population,
                _scheduler_factory,
                _initial_factory,
                NamingProblem(),
                seeds=seeds,
                backend="batch",
                n_jobs=n_jobs,
            )
            assert ensemble.seeds == seeds
            runs[n_jobs] = [result_key(r) for r in ensemble.results]
        assert runs[1] == runs[3] == runs[16]

    def test_require_convergence_raises_with_seed(self):
        protocol, population, sf, inf = make_parts()
        with pytest.raises(ConvergenceError, match="seed 0"):
            run_ensemble(
                protocol,
                population,
                sf,
                inf,
                NamingProblem(),
                seeds=range(3),
                max_interactions=1,
                backend="batch",
                require_convergence=True,
            )

    def test_stats_aggregated(self):
        protocol, population, sf, inf = make_parts(bound=8, n=8)
        ensemble = run_ensemble(
            protocol, population, sf, inf, NamingProblem(), seeds=range(5)
        )
        stats = ensemble.stats
        assert stats is not None
        assert stats.wall_seconds >= 0.0
        assert stats.interactions_per_second > 0.0
        assert 0.0 <= stats.null_fraction <= 1.0
        assert stats.wall_seconds == pytest.approx(
            sum(r.stats.wall_seconds for r in ensemble.results)
        )

    def test_stats_none_without_runs(self):
        from repro.engine.ensemble import EnsembleResult

        assert EnsembleResult().stats is None


class TestAutoBackend:
    """``backend="auto"`` resolves by population size: lockstep batch
    below ``BLEAP_MIN_POPULATION``, batched tau-leaping at or above."""

    def test_auto_resolves_to_batch_at_small_n(self):
        protocol, population, sf, inf = make_parts(bound=8, n=8)
        ensemble = run_ensemble(
            protocol, population, sf, inf, NamingProblem(), seeds=range(4)
        )
        assert ensemble.convergence_rate == 1.0
        # The batch engine reports no leap statistics.
        assert ensemble.stats.leaps is None
        assert ensemble.stats.ssa_fallback_rows is None

    def test_auto_resolves_to_bleap_at_large_n(self):
        from repro.engine.ensemble import BLEAP_MIN_POPULATION

        protocol = AsymmetricNamingProtocol(8)
        population = Population(BLEAP_MIN_POPULATION)
        ensemble = run_ensemble(
            protocol,
            population,
            _scheduler_factory,
            _initial_factory,
            NamingProblem(),
            seeds=range(3),
            max_interactions=20_000,
        )
        stats = ensemble.stats
        assert stats.leaps is not None
        assert stats.ssa_fallback_rows is not None

    def test_bleap_stats_aggregated(self):
        protocol = AsymmetricNamingProtocol(8)
        population = Population(20_000)
        seeds = range(4)
        ensemble = run_ensemble(
            protocol,
            population,
            _scheduler_factory,
            _initial_factory,
            NamingProblem(),
            seeds=seeds,
            max_interactions=50_000,
            backend="bleap",
        )
        stats = ensemble.stats
        assert stats.leaps == sum(
            r.stats.leaps for r in ensemble.results
        )
        assert stats.leaps > 0
        assert stats.mean_tau > 0.0
        assert stats.repairs >= 0
        assert 0 <= stats.ssa_fallback_rows <= len(list(seeds))


# Module-level (picklable) fault hook for the cross-process sanitizer
# test: returns a wrong-size configuration at interaction 50, tripping
# the population-size invariant on the reference backend.
def _chop_hook(interaction, config):
    if interaction == 50:
        return Configuration.uniform(Population(4), 0)
    return None


class TestSanitizeAcrossProcesses:
    @pytest.mark.parametrize("n_jobs", [1, 2])
    def test_sanitizer_error_keeps_context(self, n_jobs):
        """``sanitize=True`` composed with ``n_jobs > 1``: the
        SanitizerError raised inside a worker must reach the parent with
        its backend and invariant ids intact (regression: default
        exception pickling preserved only ``args``, so the error crossed
        the process boundary with both attributes blanked)."""
        protocol, population, _, _ = make_parts(bound=5, n=5)
        with pytest.raises(SanitizerError) as err:
            run_ensemble(
                protocol,
                population,
                _scheduler_factory,
                _initial_factory,
                NamingProblem(),
                seeds=range(4),
                max_interactions=10_000,
                backend="reference",
                sanitize=True,
                fault_hook=_chop_hook,
                n_jobs=n_jobs,
            )
        assert err.value.backend == "reference"
        assert err.value.invariant == "population-size"
        assert err.value.interaction == 50


class _CountingInitialFactory:
    """Initial factory that counts its invocations (picklable)."""

    calls = 0  # class attribute: shared within one process

    def __call__(self, population, seed):
        type(self).calls += 1
        return Configuration.uniform(population, 0)


class TestLazyInitials:
    """The lockstep path builds initial configurations on demand."""

    def test_factory_called_once_per_seed_on_batch_path(self):
        protocol, population, sf, _ = make_parts(n=20)
        factory = _CountingInitialFactory()
        _CountingInitialFactory.calls = 0
        run_ensemble(
            protocol,
            population,
            sf,
            factory,
            NamingProblem(),
            seeds=range(6),
            max_interactions=100_000,
            backend="batch",
        )
        assert _CountingInitialFactory.calls == 6

    def test_lazy_initials_do_not_prebuild(self):
        from repro.engine.ensemble import _LazyInitials

        protocol, population, _, _ = make_parts(n=10)
        built = []

        def factory(pop, seed):
            built.append(seed)
            return Configuration.uniform(pop, 0)

        lazy = _LazyInitials(factory, population, [0, 1, 2])
        assert len(lazy) == 3
        assert built == []  # construction is free
        lazy[1]
        assert built == [1]  # indexing builds exactly one
        list(lazy)
        assert built == [1, 0, 1, 2]  # iteration builds each once

    def test_lockstep_chunking_matches_serial(self):
        protocol, population, _, _ = make_parts(n=20)
        serial = run_ensemble(
            protocol,
            population,
            _scheduler_factory,
            _initial_factory,
            NamingProblem(),
            seeds=range(8),
            max_interactions=100_000,
            backend="batch",
        )
        parallel = run_ensemble(
            protocol,
            population,
            _scheduler_factory,
            _initial_factory,
            NamingProblem(),
            seeds=range(8),
            max_interactions=100_000,
            backend="batch",
            n_jobs=2,
        )
        assert parallel.results == serial.results
        assert parallel.seeds == serial.seeds
