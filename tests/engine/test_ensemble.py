"""Tests for the ensemble runner."""

import pytest

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.ensemble import run_ensemble
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.errors import ConvergenceError
from repro.schedulers.random_pair import RandomPairScheduler


def make_parts(bound=5, n=5):
    protocol = AsymmetricNamingProtocol(bound)
    population = Population(n)
    scheduler_factory = lambda pop, seed: RandomPairScheduler(pop, seed=seed)
    initial_factory = lambda pop, seed: Configuration.uniform(pop, 0)
    return protocol, population, scheduler_factory, initial_factory


class TestRunEnsemble:
    def test_one_result_per_seed(self):
        protocol, population, sf, inf = make_parts()
        ensemble = run_ensemble(
            protocol, population, sf, inf, NamingProblem(), seeds=range(7)
        )
        assert len(ensemble.results) == 7
        assert ensemble.seeds == list(range(7))

    def test_convergence_rate_and_summary(self):
        protocol, population, sf, inf = make_parts()
        ensemble = run_ensemble(
            protocol, population, sf, inf, NamingProblem(), seeds=range(5)
        )
        assert ensemble.convergence_rate == 1.0
        summary = ensemble.convergence_summary()
        assert summary.count == 5
        assert ensemble.failed_seeds() == []

    def test_budget_failures_recorded(self):
        protocol, population, sf, inf = make_parts()
        ensemble = run_ensemble(
            protocol,
            population,
            sf,
            inf,
            NamingProblem(),
            seeds=range(3),
            max_interactions=1,
        )
        assert ensemble.convergence_rate == 0.0
        assert ensemble.failed_seeds() == [0, 1, 2]
        with pytest.raises(ConvergenceError):
            ensemble.convergence_summary()

    def test_require_convergence_raises_with_seed(self):
        protocol, population, sf, inf = make_parts()
        with pytest.raises(ConvergenceError, match="seed 0"):
            run_ensemble(
                protocol,
                population,
                sf,
                inf,
                NamingProblem(),
                seeds=range(3),
                max_interactions=1,
                require_convergence=True,
            )

    def test_empty_ensemble(self):
        protocol, population, sf, inf = make_parts()
        ensemble = run_ensemble(
            protocol, population, sf, inf, NamingProblem(), seeds=[]
        )
        assert ensemble.convergence_rate == 0.0

    def test_seeds_drive_distinct_runs(self):
        protocol, population, sf, inf = make_parts()
        ensemble = run_ensemble(
            protocol, population, sf, inf, NamingProblem(), seeds=[1, 2]
        )
        a, b = ensemble.results
        # Same start, different schedules: final namings usually differ;
        # at minimum the executions are independent objects.
        assert a is not b
        assert a.converged and b.converged


class TestForwardedKnobs:
    def test_check_interval_forwarded(self):
        protocol, population, sf, inf = make_parts()
        ensemble = run_ensemble(
            protocol,
            population,
            sf,
            inf,
            NamingProblem(),
            seeds=range(3),
            check_interval=7,
        )
        for result in ensemble.results:
            assert result.converged
            assert result.convergence_interaction % 7 == 0

    def test_raise_on_timeout_forwarded(self):
        protocol, population, sf, inf = make_parts()
        with pytest.raises(ConvergenceError):
            run_ensemble(
                protocol,
                population,
                sf,
                inf,
                NamingProblem(),
                seeds=range(2),
                max_interactions=1,
                raise_on_timeout=True,
            )

    def test_fault_hook_forwarded(self):
        protocol, population, sf, inf = make_parts()
        calls = []

        def hook(interaction, config):
            if interaction == 3:
                calls.append(interaction)
            return None

        ensemble = run_ensemble(
            protocol,
            population,
            sf,
            inf,
            NamingProblem(),
            seeds=range(2),
            max_interactions=2_000,
            fault_hook=hook,
        )
        assert calls == [3, 3]
        assert len(ensemble.results) == 2

    def test_unknown_backend_rejected(self):
        from repro.errors import SimulationError

        protocol, population, sf, inf = make_parts()
        with pytest.raises(SimulationError, match="unknown simulation"):
            run_ensemble(
                protocol,
                population,
                sf,
                inf,
                NamingProblem(),
                seeds=range(1),
                backend="warp",
            )


class TestSeedChunking:
    """The parallel path ships seeds to workers in contiguous chunks;
    the split must be balanced, ordered and lossless."""

    def test_chunks_are_contiguous_and_balanced(self):
        from repro.engine.ensemble import _chunk_seeds

        seeds = list(range(11))
        chunks = _chunk_seeds(seeds, 4)
        assert len(chunks) == 4
        assert [s for chunk in chunks for s in chunk] == seeds
        sizes = [len(chunk) for chunk in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_seeds(self):
        from repro.engine.ensemble import _chunk_seeds

        chunks = _chunk_seeds([1, 2], 5)
        assert [s for chunk in chunks for s in chunk] == [1, 2]
        assert all(len(chunk) <= 1 for chunk in chunks)

    def test_chunked_serial_dispatch_matches_per_seed(self):
        """Running seeds through the chunk runner yields the same
        per-seed results as the one-seed-at-a-time path."""
        from repro.engine.ensemble import _run_chunk

        protocol, population, sf, inf = make_parts()
        common = (
            protocol,
            population,
            sf,
            inf,
            NamingProblem(),
            100_000,
            "reference",
            None,
            False,
            None,
        )
        chunked = _run_chunk((common, [0, 1, 2]))
        singles = [_run_chunk((common, [seed]))[0] for seed in (0, 1, 2)]
        assert chunked == singles
