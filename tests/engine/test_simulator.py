"""Tests for the simulation loop: convergence certification, budgets,
traces, fault hooks and wiring validation."""

import pytest

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.leader_uniform import LeaderUniformNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.simulator import Simulator, run_protocol
from repro.engine.trace import Trace, replay
from repro.errors import ConvergenceError, SimulationError
from repro.schedulers.random_pair import RandomPairScheduler
from repro.schedulers.round_robin import RoundRobinScheduler


def make_setup(n=4, bound=4, seed=1):
    protocol = AsymmetricNamingProtocol(bound)
    population = Population(n)
    scheduler = RandomPairScheduler(population, seed=seed)
    return protocol, population, scheduler


class TestWiring:
    def test_leader_required_but_missing(self):
        protocol = LeaderUniformNamingProtocol(3)
        population = Population(3)
        scheduler = RandomPairScheduler(population, seed=0)
        with pytest.raises(SimulationError, match="requires a leader"):
            Simulator(protocol, population, scheduler)

    def test_leader_present_but_unused(self):
        protocol = AsymmetricNamingProtocol(3)
        population = Population(2, has_leader=True)
        scheduler = RandomPairScheduler(population, seed=0)
        with pytest.raises(SimulationError, match="leaderless"):
            Simulator(protocol, population, scheduler)

    def test_scheduler_population_mismatch(self):
        protocol = AsymmetricNamingProtocol(3)
        population = Population(3)
        other = Population(3)
        scheduler = RandomPairScheduler(other, seed=0)
        with pytest.raises(SimulationError, match="different population"):
            Simulator(protocol, population, scheduler)

    def test_initial_size_mismatch(self):
        protocol, population, scheduler = make_setup()
        simulator = Simulator(protocol, population, scheduler)
        with pytest.raises(SimulationError, match="initial configuration"):
            simulator.run(Configuration((0, 0)))


class TestConvergence:
    def test_converges_and_certifies(self):
        protocol, population, scheduler = make_setup()
        simulator = Simulator(
            protocol, population, scheduler, NamingProblem()
        )
        result = simulator.run(Configuration.uniform(population, 0))
        assert result.converged
        assert result.convergence_interaction is not None
        assert len(set(result.names())) == population.n_mobile

    def test_already_converged_reports_zero(self):
        protocol, population, scheduler = make_setup()
        simulator = Simulator(
            protocol, population, scheduler, NamingProblem()
        )
        result = simulator.run(Configuration((0, 1, 2, 3)))
        assert result.converged
        assert result.convergence_interaction == 0
        assert result.interactions == 0

    def test_budget_exhaustion_returns_unconverged(self):
        protocol, population, scheduler = make_setup()
        simulator = Simulator(
            protocol, population, scheduler, NamingProblem()
        )
        result = simulator.run(
            Configuration.uniform(population, 0), max_interactions=1
        )
        assert not result.converged
        assert result.interactions == 1

    def test_budget_exhaustion_raises_when_asked(self):
        protocol, population, scheduler = make_setup()
        simulator = Simulator(
            protocol, population, scheduler, NamingProblem()
        )
        with pytest.raises(ConvergenceError):
            simulator.run(
                Configuration.uniform(population, 0),
                max_interactions=1,
                raise_on_timeout=True,
            )

    def test_no_problem_runs_whole_budget(self):
        protocol, population, scheduler = make_setup()
        simulator = Simulator(protocol, population, scheduler, problem=None)
        result = simulator.run(
            Configuration.uniform(population, 0), max_interactions=50
        )
        assert not result.converged
        assert result.interactions == 50

    def test_final_check_covers_partial_interval(self):
        # A tiny budget that converges exactly at the budget boundary must
        # still be detected by the final check.
        protocol = AsymmetricNamingProtocol(2)
        population = Population(2)
        scheduler = RoundRobinScheduler(population)
        simulator = Simulator(
            protocol, population, scheduler, NamingProblem(),
            check_interval=1000,
        )
        result = simulator.run(
            Configuration.uniform(population, 0), max_interactions=3
        )
        assert result.converged


class TestAccounting:
    def test_non_null_counter(self):
        protocol = AsymmetricNamingProtocol(2)
        population = Population(2)
        scheduler = RoundRobinScheduler(population)
        simulator = Simulator(
            protocol, population, scheduler, NamingProblem()
        )
        result = simulator.run(Configuration.uniform(population, 0))
        assert result.non_null_interactions == 1  # one symmetry break

    def test_parallel_time(self):
        protocol, population, scheduler = make_setup(n=4)
        simulator = Simulator(protocol, population, scheduler, None)
        result = simulator.run(
            Configuration.uniform(population, 0), max_interactions=40
        )
        assert result.parallel_time == pytest.approx(10.0)

    def test_str_summary(self):
        protocol, population, scheduler = make_setup()
        simulator = Simulator(
            protocol, population, scheduler, NamingProblem()
        )
        result = simulator.run(Configuration.uniform(population, 0))
        assert "converged" in str(result)

    def test_str_shows_all_names_when_small(self):
        protocol, population, scheduler = make_setup(n=4)
        simulator = Simulator(protocol, population, scheduler, None)
        result = simulator.run(
            Configuration.uniform(population, 0), max_interactions=0
        )
        assert "names = (0, 0, 0, 0)" in str(result)
        assert "more" not in str(result)

    def test_str_truncates_large_populations(self):
        protocol = AsymmetricNamingProtocol(40)
        population = Population(30)
        scheduler = RandomPairScheduler(population, seed=0)
        simulator = Simulator(protocol, population, scheduler, None)
        result = simulator.run(
            Configuration.uniform(population, 0), max_interactions=0
        )
        text = str(result)
        assert "... (22 more)" in text
        assert text.count("0") >= 8


class TestTraceIntegration:
    def test_trace_replays_to_final_configuration(self):
        protocol, population, scheduler = make_setup(seed=9)
        simulator = Simulator(
            protocol, population, scheduler, NamingProblem()
        )
        trace = Trace(capacity=None, record_null=True)
        initial = Configuration.uniform(population, 0)
        result = simulator.run(initial, trace=trace)
        assert replay(initial, trace.records) == result.final_configuration


class TestFaultHook:
    def test_fault_applied_and_counted(self):
        protocol, population, scheduler = make_setup()

        def hook(interaction, config):
            if interaction == 5:
                return Configuration.uniform(population, 1)
            return None

        simulator = Simulator(
            protocol, population, scheduler, NamingProblem()
        )
        result = simulator.run(
            Configuration.uniform(population, 0), fault_hook=hook
        )
        assert result.faults_injected == 1
        assert result.converged  # self-stabilizing: recovers

    def test_fault_at_zero_prevents_immediate_convergence(self):
        protocol, population, scheduler = make_setup()

        def hook(interaction, config):
            if interaction == 0:
                return Configuration.uniform(population, 2)
            return None

        simulator = Simulator(
            protocol, population, scheduler, NamingProblem()
        )
        # Start already converged: the fault must still land.
        result = simulator.run(
            Configuration((0, 1, 2, 3)), fault_hook=hook
        )
        assert result.faults_injected == 1
        assert result.convergence_interaction != 0


class TestRunProtocolHelper:
    def test_run_protocol_wrapper(self):
        protocol, population, scheduler = make_setup()
        result = run_protocol(
            protocol,
            population,
            scheduler,
            Configuration.uniform(population, 0),
            NamingProblem(),
        )
        assert result.converged
