"""Tests for Configuration: construction, views, equivalence, updates."""

import pytest

from repro.core.counting import CountingLeaderState
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.errors import ConfigurationError

LEADER = CountingLeaderState(0, 0)


class TestConstruction:
    def test_from_states_leaderless(self):
        pop = Population(3)
        config = Configuration.from_states(pop, (1, 2, 3))
        assert config.states == (1, 2, 3)
        assert not config.has_leader

    def test_from_states_with_leader(self):
        pop = Population(2, has_leader=True)
        config = Configuration.from_states(pop, (1, 2), LEADER)
        assert config.leader_state == LEADER
        assert config.mobile_states == (1, 2)

    def test_wrong_mobile_count_rejected(self):
        pop = Population(3)
        with pytest.raises(ConfigurationError):
            Configuration.from_states(pop, (1, 2))

    def test_missing_leader_state_rejected(self):
        pop = Population(2, has_leader=True)
        with pytest.raises(ConfigurationError):
            Configuration.from_states(pop, (1, 2))

    def test_unexpected_leader_state_rejected(self):
        pop = Population(2)
        with pytest.raises(ConfigurationError):
            Configuration.from_states(pop, (1, 2), LEADER)

    def test_uniform(self):
        pop = Population(4)
        config = Configuration.uniform(pop, 9)
        assert config.states == (9, 9, 9, 9)

    def test_leader_index_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration((1, 2), leader_index=5)


class TestViews:
    def test_leader_state_raises_without_leader(self):
        config = Configuration((1, 2))
        with pytest.raises(ConfigurationError):
            _ = config.leader_state

    def test_mobile_states_skip_leader(self):
        config = Configuration((1, 2, LEADER), leader_index=2)
        assert config.mobile_states == (1, 2)

    def test_multiset(self):
        config = Configuration((1, 1, 2))
        assert config.multiset() == {1: 2, 2: 1}

    def test_multiset_excludes_leader(self):
        config = Configuration((1, 1, LEADER), leader_index=2)
        assert config.multiset() == {1: 2}

    def test_homonym_states(self):
        config = Configuration((1, 1, 2, 3, 3, 3))
        assert config.homonym_states() == {1, 3}

    def test_homonym_agents(self):
        config = Configuration((1, 1, 2, LEADER), leader_index=3)
        assert config.homonym_agents() == [0, 1]

    def test_names_distinct_true(self):
        assert Configuration((1, 2, 3)).names_distinct()

    def test_names_distinct_false(self):
        assert not Configuration((1, 2, 1)).names_distinct()

    def test_names_distinct_ignores_leader(self):
        config = Configuration((1, 2, LEADER), leader_index=2)
        assert config.names_distinct()

    def test_len_and_iter(self):
        config = Configuration((4, 5, 6))
        assert len(config) == 3
        assert list(config) == [4, 5, 6]


class TestEquivalence:
    def test_permutation_is_equivalent(self):
        a = Configuration((1, 2, 3, LEADER), leader_index=3)
        b = Configuration((3, 1, 2, LEADER), leader_index=3)
        assert a.is_equivalent(b)
        assert a.canonical() == b.canonical()

    def test_different_multiset_not_equivalent(self):
        assert not Configuration((1, 1)).is_equivalent(Configuration((1, 2)))

    def test_different_leader_state_not_equivalent(self):
        a = Configuration((1, 2, CountingLeaderState(0, 0)), leader_index=2)
        b = Configuration((1, 2, CountingLeaderState(1, 0)), leader_index=2)
        assert not a.is_equivalent(b)
        assert a.canonical() != b.canonical()

    def test_leadered_vs_leaderless_not_equivalent(self):
        a = Configuration((1, 2))
        b = Configuration((1, 2, LEADER), leader_index=2)
        assert not a.is_equivalent(b)


class TestCanonical:
    def test_numeric_sort_not_lexicographic(self):
        # repr-based sorting would order 10 before 2; sort_key must not.
        config = Configuration((10, 2, 1))
        assert config.canonical()[0] == (1, 2, 10)

    def test_mixed_state_types_sort_stably(self):
        config = Configuration((2, "name", 1, LEADER), leader_index=3)
        key = config.canonical()
        assert key[0] == (1, 2, "name")

    def test_canonical_is_cached(self):
        config = Configuration((3, 1, 2))
        assert config.canonical() is config.canonical()

    def test_cache_does_not_leak_across_instances(self):
        a = Configuration((1, 2))
        b = Configuration((2, 1))
        assert a.canonical() == b.canonical()
        assert Configuration((1, 3)).canonical() != a.canonical()


class TestUpdates:
    def test_replace_returns_new_object(self):
        config = Configuration((1, 2, 3))
        updated = config.replace({0: 9})
        assert updated.states == (9, 2, 3)
        assert config.states == (1, 2, 3)

    def test_replace_rejects_bad_agent(self):
        with pytest.raises(ConfigurationError):
            Configuration((1, 2)).replace({5: 0})

    def test_apply_orders_outcome(self):
        config = Configuration((1, 2, 3))
        after = config.apply(2, 0, (30, 10))
        assert after.states == (10, 2, 30)

    def test_apply_rejects_self_interaction(self):
        with pytest.raises(ConfigurationError):
            Configuration((1, 2)).apply(1, 1, (0, 0))

    def test_configurations_hashable(self):
        a = Configuration((1, 2, LEADER), leader_index=2)
        b = Configuration((1, 2, LEADER), leader_index=2)
        assert hash(a) == hash(b)
        assert len({a, b}) == 1
