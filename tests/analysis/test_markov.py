"""Tests for exact expected-time computation on the lumped chain."""

import pytest

from repro.analysis.markov import (
    expected_convergence_time,
    naming_absorbing,
)
from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.global_naming import GlobalNamingProtocol
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.protocol import TableProtocol
from repro.errors import VerificationError


class TestNamingAbsorbing:
    def test_distinct_and_silent_is_absorbing(self):
        protocol = AsymmetricNamingProtocol(3)
        assert naming_absorbing(protocol)(((0, 1, 2), None))

    def test_duplicates_not_absorbing(self):
        protocol = AsymmetricNamingProtocol(3)
        assert not naming_absorbing(protocol)(((0, 0, 2), None))

    def test_distinct_but_renaming_pending_not_absorbing(self):
        """Protocol 3 mid-sweep: distinct names, pointer below P - the
        leader will still rename, so the class is not absorbed."""
        protocol = GlobalNamingProtocol(3)
        from repro.core.global_naming import GlobalLeaderState

        mid_sweep = ((0, 1, 2), GlobalLeaderState(3, 4, 1))
        done = ((0, 1, 2), GlobalLeaderState(3, 4, 3))
        predicate = naming_absorbing(protocol)
        assert not predicate(mid_sweep)
        assert predicate(done)

    def test_prop13_reset_agent_not_absorbing(self):
        protocol = SymmetricGlobalNamingProtocol(3)
        assert not naming_absorbing(protocol)(((1, 2, 3), None))  # 3 = reset


class TestAbsorptionProbability:
    def test_correct_protocol_absorbs_almost_surely(self):
        from repro.analysis.markov import absorption_probability

        protocol = AsymmetricNamingProtocol(3)
        start = ((0, 0, 0), None)
        probs = absorption_probability(
            protocol, [start], naming_absorbing(protocol)
        )
        assert probs[start] == pytest.approx(1.0)

    def test_prop13_two_agent_cycle_never_absorbs(self):
        from repro.analysis.markov import absorption_probability

        protocol = SymmetricGlobalNamingProtocol(3)
        start = ((1, 1), None)
        probs = absorption_probability(
            protocol, [start], naming_absorbing(protocol)
        )
        assert probs[start] == 0.0

    def test_trap_basin_gets_zero_and_escape_gets_one(self):
        from repro.analysis.markov import absorption_probability

        # (0,0) resolves to (0,1); (1,1) falls into the silent duplicate
        # trap (2,2).
        protocol = TableProtocol(
            {(0, 0): (0, 1), (1, 1): (2, 2)}, mobile_states=[0, 1, 2]
        )
        probs = absorption_probability(
            protocol,
            [((0, 0), None), ((1, 1), None)],
            naming_absorbing(protocol),
        )
        assert probs[((0, 0), None)] == pytest.approx(1.0)
        assert probs[((1, 1), None)] == 0.0

    def test_strictly_intermediate_probability(self):
        from repro.analysis.markov import absorption_probability

        # From (0,0): resolves to (0,1) - but (0,1) flips a coin: the
        # orientation (0,1) repairs to the absorbed (1,2) while (1,0)
        # collapses back to the doomed (0,0)->(3,3) trap... construct:
        # (0,0)->(0,1); (0,1)->(1,2) [absorbing-ish]; (1,0)->(3,3) trap.
        protocol = TableProtocol(
            {(0, 0): (0, 1), (0, 1): (1, 2), (1, 0): (3, 3)},
            mobile_states=[0, 1, 2, 3],
        )
        start = ((0, 1), None)
        probs = absorption_probability(
            protocol, [start], naming_absorbing(protocol)
        )
        assert 0.0 < probs[start] < 1.0

    def test_rejects_empty(self):
        from repro.analysis.markov import absorption_probability

        protocol = AsymmetricNamingProtocol(2)
        with pytest.raises(VerificationError):
            absorption_probability(
                protocol, [], naming_absorbing(protocol)
            )


class TestExpectedTime:
    def test_two_agent_homonym_pair(self):
        """Hand-computable: two agents at (0, 0) under P = 2. Every draw
        is the homonym meeting, which resolves immediately: E[T] = 1."""
        protocol = AsymmetricNamingProtocol(2)
        start = ((0, 0), None)
        times = expected_convergence_time(
            protocol, [start], naming_absorbing(protocol)
        )
        assert times[start] == pytest.approx(1.0)

    def test_absorbed_start_is_zero(self):
        protocol = AsymmetricNamingProtocol(3)
        start = ((0, 1, 2), None)
        times = expected_convergence_time(
            protocol, [start], naming_absorbing(protocol)
        )
        assert times[start] == 0.0

    def test_three_agents_hand_check(self):
        """(0,0,1) under P = 3: the homonym draw has probability 2/6 =
        1/3 (the cross draws are null), and it moves to (0,1,1) - the
        same structure again, 1/3 to reach (0,1,2).  Two geometric
        phases with p = 1/3 each: E[T] = 3 + 3 = 6."""
        protocol = AsymmetricNamingProtocol(3)
        start = ((0, 0, 1), None)
        times = expected_convergence_time(
            protocol, [start], naming_absorbing(protocol)
        )
        assert times[start] == pytest.approx(6.0)

    def test_matches_simulation_asymmetric(self):
        from repro.engine import (
            Configuration,
            NamingProblem,
            Population,
            Simulator,
        )
        from repro.schedulers import RandomPairScheduler

        n = 4
        protocol = AsymmetricNamingProtocol(n)
        start = ((0,) * n, None)
        exact = expected_convergence_time(
            protocol, [start], naming_absorbing(protocol)
        )[start]
        total = 0
        runs = 300
        for seed in range(runs):
            pop = Population(n)
            simulator = Simulator(
                protocol,
                pop,
                RandomPairScheduler(pop, seed=seed),
                NamingProblem(),
                check_interval=1,
            )
            result = simulator.run(Configuration.uniform(pop, 0))
            total += result.convergence_interaction
        assert total / runs == pytest.approx(exact, rel=0.10)

    def test_protocol3_wall_is_monotone_and_explosive(self):
        expectations = []
        for bound in (3, 4, 5):
            protocol = GlobalNamingProtocol(bound)
            start = ((0,) * bound, protocol.initial_leader_state())
            times = expected_convergence_time(
                protocol, [start], naming_absorbing(protocol)
            )
            expectations.append(times[start])
        assert expectations == sorted(expectations)
        assert expectations[1] / expectations[0] > 100
        assert expectations[2] / expectations[1] > 1000

    def test_unreachable_absorption_detected(self):
        # A pure livelock: 0 <-> 1 swap with no absorbing class reachable
        # from (0, 0) ... the all-flip protocol never reaches silence.
        flip = TableProtocol(
            {(0, 0): (1, 1), (1, 1): (0, 0)}, mobile_states=[0, 1]
        )
        with pytest.raises(VerificationError):
            expected_convergence_time(
                flip, [((0, 0), None)], naming_absorbing(flip)
            )

    def test_rejects_empty_initials(self):
        protocol = AsymmetricNamingProtocol(2)
        with pytest.raises(VerificationError):
            expected_convergence_time(
                protocol, [], naming_absorbing(protocol)
            )

    def test_node_budget(self):
        protocol = GlobalNamingProtocol(4)
        start = ((0,) * 4, protocol.initial_leader_state())
        with pytest.raises(VerificationError, match="exceeded"):
            expected_convergence_time(
                protocol,
                [start],
                naming_absorbing(protocol),
                max_nodes=3,
            )
