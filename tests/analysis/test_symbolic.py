"""Tests for the symbolic frontier model checker.

Engine behavior (closure, root conventions, frontier fixpoint, masks,
SCCs) plus the counterexample round trip: every witness kind the
checker can emit is exercised on a fixture that produces it, and each
witness must replay successfully on the reference simulator.
"""

import numpy as np
import pytest

from repro.analysis import symbolic as S
from repro.core.selfstab_naming import SelfStabilizingNamingProtocol
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.population import Population
from repro.engine.protocol import TableProtocol
from repro.errors import VerificationError

#: Never separates duplicates: the all-null protocol.  Every silent
#: configuration with a repeated state is a naming-on-silence violation.
def null_protocol():
    return TableProtocol({}, mobile_states=[0, 1])


#: Pure swap: (0, 1) alternates forever, (0, 0) and (1, 1) are silent
#: duplicates reachable only as roots.  From {0, 1} roots the sink SCC
#: keeps both names present but each *agent*'s name changes forever.
def swap_protocol():
    return TableProtocol(
        {(0, 1): (1, 0), (1, 0): (0, 1)}, mobile_states=[0, 1]
    )


#: Swap with a funnel: duplicate roots are repaired into {0, 1}, which
#: then swaps forever - the sink component itself is a livelock.
def funnel_swap_protocol():
    return TableProtocol(
        {
            (0, 0): (0, 1),
            (1, 1): (0, 1),
            (0, 1): (1, 0),
            (1, 0): (0, 1),
        },
        mobile_states=[0, 1],
    )


class TestStateClosure:
    def test_closure_contains_initial_sets(self):
        protocol = SymmetricGlobalNamingProtocol(3)
        mobile0, leader0 = S.initial_state_sets(protocol)
        closed = S.state_closure(protocol)
        assert closed is not None
        mobile, leader = closed
        assert mobile0 <= mobile
        assert leader0 <= leader

    def test_closure_within_declared_space(self):
        protocol = SelfStabilizingNamingProtocol(2)
        closed = S.state_closure(protocol)
        assert closed is not None
        mobile, leader = closed
        assert mobile <= set(protocol.mobile_state_space())
        assert leader <= set(protocol.leader_state_space())


class TestCountsSystem:
    def test_encode_decode_roundtrip(self):
        protocol = SelfStabilizingNamingProtocol(2)
        system = S.CountsSystem(protocol)
        pop = Population(3, has_leader=True)
        from repro.analysis.reachability import (
            arbitrary_initial_configurations,
        )

        for config in arbitrary_initial_configurations(protocol, pop):
            row = system.encode(config)
            back = system.decode(row, pop)
            assert sorted(map(repr, back.mobile_states)) == sorted(
                map(repr, config.mobile_states)
            )
            assert back.leader_state == config.leader_state

    def test_arbitrary_roots_enumerate_all_multisets(self):
        system = S.CountsSystem(swap_protocol())
        roots = system.root_matrix(3, "arbitrary")
        # multisets of size 3 over 2 states: C(4, 3) = 4
        assert roots.shape[0] == 4
        assert (roots.sum(axis=1) == 3).all()

    def test_uniform_roots_use_designated_state(self):
        class Designated(TableProtocol):
            def initial_mobile_state(self):
                return 0

        protocol = Designated({}, mobile_states=[0, 1])
        system = S.CountsSystem(protocol)
        roots = system.root_matrix(3, "uniform")
        assert roots.shape[0] == 1
        assert roots[0, system.midx[0]] == 3

    def test_arbitrary_leader_roots_span_full_space(self):
        protocol = SelfStabilizingNamingProtocol(2)
        system = S.CountsSystem(protocol)
        roots = system.root_matrix(2, "arbitrary")
        n_leaders = protocol.leader_space_size()
        n_multisets = roots.shape[0] // n_leaders
        assert roots.shape[0] == n_multisets * n_leaders
        assert len(np.unique(roots[:, system.M])) == n_leaders

    def test_explicit_leader_states_restrict_roots(self):
        protocol = SelfStabilizingNamingProtocol(2)
        system = S.CountsSystem(protocol)
        designated = protocol.initial_leader_state()
        roots = system.root_matrix(2, "arbitrary", [designated])
        assert len(np.unique(roots[:, system.M])) == 1

    def test_max_roots_budget_enforced(self):
        system = S.CountsSystem(swap_protocol())
        with pytest.raises(VerificationError, match="root budget"):
            system.root_matrix(3, "arbitrary", max_roots=1)

    def test_huge_leader_space_fails_fast(self):
        # P=32 declares ~1.5e11 leader states; the size hint must
        # reject enumeration instead of materializing them.
        protocol = SelfStabilizingNamingProtocol(32)
        system = S.CountsSystem(protocol)
        with pytest.raises(VerificationError, match="leader"):
            system.root_matrix(3, "arbitrary")


class TestReach:
    def test_fixpoint_covers_swap_orbit(self):
        system = S.CountsSystem(swap_protocol())
        roots = system.root_matrix(2, "arbitrary")
        rs = S.reach(system, roots)
        # all 3 count vectors of 2 agents over 2 states are reachable
        assert rs.n_nodes == 3

    def test_max_nodes_cap(self):
        # Roots are admitted unconditionally; the cap bites as soon as
        # the expansion discovers a configuration beyond them.
        protocol = SelfStabilizingNamingProtocol(3)
        system = S.CountsSystem(protocol)
        roots = system.root_matrix(
            3, "arbitrary", [protocol.initial_leader_state()]
        )
        with pytest.raises(VerificationError, match="exceeded"):
            S.reach(system, roots, max_nodes=len(roots))

    def test_path_to_replays_through_simulator(self):
        protocol = funnel_swap_protocol()
        system = S.CountsSystem(protocol)
        roots = system.root_matrix(2, "arbitrary")
        rs = S.reach(system, roots)
        # every reached node has a rule path from some root
        for node in range(rs.n_nodes):
            path = rs.path_to(node)
            assert path is not None

    def test_sccs_require_edges(self):
        system = S.CountsSystem(swap_protocol())
        roots = system.root_matrix(2, "arbitrary")
        rs = S.reach(system, roots, track_edges=False)
        with pytest.raises(VerificationError, match="track_edges"):
            S.symbolic_sccs(rs)

    def test_swap_cycle_is_one_scc(self):
        system = S.CountsSystem(swap_protocol())
        roots = system.root_matrix(2, "arbitrary")
        rs = S.reach(system, roots, track_edges=True)
        sccs = S.symbolic_sccs(rs)
        assert max(len(c) for c in sccs) == 1  # swap is a self-loop
        # in the quotient: counts {0:1, 1:1} maps to itself


class TestWitnessRoundTrip:
    """Every FAIL kind must come with a replay-validated witness."""

    def assert_fails(self, verdict, kind):
        assert not verdict.holds
        assert verdict.witness is not None
        assert verdict.witness.kind == kind
        assert verdict.replay_validated is True

    def test_silent_duplicates(self):
        verdict = S.check_reach(null_protocol(), 2, mobile_mode="arbitrary")
        self.assert_fails(verdict, "silent-duplicates")

    def test_sink_duplicates(self):
        verdict = S.check_sinks(swap_protocol(), 2, mobile_mode="arbitrary")
        self.assert_fails(verdict, "sink-duplicates")

    def test_weak_duplicates(self):
        verdict = S.check_liveness(
            swap_protocol(), 2, mobile_mode="arbitrary"
        )
        self.assert_fails(verdict, "weak-duplicates")

    def test_sink_livelock(self):
        verdict = S.check_sinks(
            funnel_swap_protocol(), 2, mobile_mode="arbitrary"
        )
        self.assert_fails(verdict, "sink-livelock")

    def test_weak_livelock(self):
        verdict = S.check_liveness(
            funnel_swap_protocol(), 2, mobile_mode="arbitrary"
        )
        self.assert_fails(verdict, "weak-livelock")

    def test_prop13_fails_weak_but_passes_global(self):
        # The Table 1 content: the leaderless symmetric protocol needs
        # global fairness; a weakly fair adversary can livelock it.
        protocol = SymmetricGlobalNamingProtocol(3)
        live = S.check_liveness(protocol, 3, mobile_mode="arbitrary")
        self.assert_fails(live, "weak-livelock")
        sinks = S.check_sinks(protocol, 3, mobile_mode="arbitrary")
        assert sinks.holds

    def test_manual_replay_of_emitted_witness(self):
        verdict = S.check_liveness(
            funnel_swap_protocol(), 2, mobile_mode="arbitrary"
        )
        population = Population(2)
        assert S.replay_witness(
            funnel_swap_protocol(), population, verdict.witness
        )


class TestPositiveVerdicts:
    def test_prop13_passes_all_global_properties(self):
        protocol = SymmetricGlobalNamingProtocol(4)
        for prop in ("reach", "sinks"):
            verdict = S.check_property(
                protocol, prop, 3, mobile_mode="arbitrary"
            )
            assert verdict.holds, verdict.render()
            assert verdict.witness is None

    def test_prop16_passes_all_properties(self):
        protocol = SelfStabilizingNamingProtocol(5)
        for prop in S.PROPERTIES:
            verdict = S.check_property(
                protocol,
                prop,
                3,
                mobile_mode="arbitrary",
                leader_states=[protocol.initial_leader_state()],
            )
            assert verdict.holds, verdict.render()

    def test_unknown_property_rejected(self):
        with pytest.raises(ValueError, match="unknown property"):
            S.check_property(swap_protocol(), "bogus", 2)

    def test_render_mentions_replay(self):
        verdict = S.check_reach(null_protocol(), 2, mobile_mode="arbitrary")
        assert "replayed" in verdict.render()
