"""Tests for the fairness auditor - and empirical validation of each
scheduler's advertised fairness."""

import pytest

from repro.analysis.fairness_audit import FairnessAudit, audit_scheduler
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.errors import VerificationError
from repro.schedulers.matching import MatchingScheduler
from repro.schedulers.random_pair import RandomPairScheduler
from repro.schedulers.round_robin import RoundRobinScheduler


class TestFairnessAudit:
    def test_counts_and_gaps(self):
        pop = Population(3)
        audit = FairnessAudit(pop)
        audit.observe(0, 1)
        audit.observe(1, 2)
        audit.observe(0, 1)
        audit.finish()
        assert audit.counts[frozenset((0, 1))] == 2
        assert audit.counts[frozenset((0, 2))] == 0
        assert audit.starving_pairs() == [frozenset((0, 2))]
        assert audit.imbalance() == float("inf")

    def test_orientation_ignored(self):
        pop = Population(2)
        audit = FairnessAudit(pop)
        audit.observe(1, 0)
        assert audit.counts[frozenset((0, 1))] == 1

    def test_rejects_foreign_pairs(self):
        audit = FairnessAudit(Population(2))
        with pytest.raises(VerificationError):
            audit.observe(0, 5)

    def test_gap_measurement(self):
        pop = Population(2)
        audit = FairnessAudit(pop)
        for _ in range(5):
            audit.observe(0, 1)
        audit.finish()
        assert audit.worst_gap() == 1

    def test_trailing_gap_counted_on_finish(self):
        pop = Population(3)
        audit = FairnessAudit(pop)
        audit.observe(0, 1)
        for _ in range(9):
            audit.observe(1, 2)
        audit.finish()
        # Pair (0,1) last met at meeting 0 of 10.
        assert audit.max_gap[frozenset((0, 1))] == 10


class TestSchedulerAudits:
    def test_round_robin_is_perfectly_balanced(self):
        pop = Population(4)
        scheduler = RoundRobinScheduler(pop)
        config = Configuration.uniform(pop, 0)
        audit = audit_scheduler(scheduler, config, scheduler.cycle_length * 5)
        assert audit.imbalance() == 1.0
        assert audit.worst_gap() <= scheduler.cycle_length

    def test_matching_scheduler_bounded_gaps(self):
        pop = Population(6)
        scheduler = MatchingScheduler(pop)
        config = Configuration.uniform(pop, 0)
        rotation = pop.pair_count()
        audit = audit_scheduler(scheduler, config, rotation * 4)
        assert not audit.starving_pairs()
        assert audit.worst_gap() <= rotation + rotation  # one full rotation apart

    def test_random_scheduler_statistically_fair(self):
        pop = Population(4)
        scheduler = RandomPairScheduler(pop, seed=8)
        config = Configuration.uniform(pop, 0)
        audit = audit_scheduler(scheduler, config, 6000)
        assert not audit.starving_pairs()
        assert audit.imbalance() < 1.3
