"""Tests for the global-fairness model checker (SCC machinery included)."""

import pytest

from repro.analysis.model_checker import (
    check_naming_global,
    sink_components,
    strongly_connected_components,
)
from repro.analysis.reachability import (
    arbitrary_initial_configurations,
    explore,
)
from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.protocol import TableProtocol


def graph_of(protocol, n, starts):
    pop = Population(n)
    return pop, explore(protocol, pop, starts)


class TestSCC:
    def test_silent_configs_are_singletons(self):
        protocol = AsymmetricNamingProtocol(2)
        pop, graph = graph_of(protocol, 2, [Configuration((0, 0))])
        components = strongly_connected_components(graph)
        assert all(len(c) == 1 for c in components)
        assert len(components) == 3

    def test_cycle_grouped_into_one_component(self):
        # Prop 13's two-agent cycle: (1,1) -> (P,P) -> (1,1).
        protocol = SymmetricGlobalNamingProtocol(3)
        pop, graph = graph_of(protocol, 2, [Configuration((1, 1))])
        components = strongly_connected_components(graph)
        sizes = sorted(len(c) for c in components)
        assert 2 in sizes  # the {(1,1),(3,3)} cycle

    def test_sink_components_have_no_exits(self):
        protocol = SymmetricGlobalNamingProtocol(3)
        pop, graph = graph_of(protocol, 2, [Configuration((1, 1))])
        sinks = sink_components(graph)
        for component in sinks:
            members = set(component)
            for config in component:
                assert all(
                    succ in members for succ in graph.successors(config)
                )

    def test_tarjan_handles_deep_chain(self):
        # A long linear chain: every node its own SCC.
        chain = TableProtocol(
            {(i, i): (i, i + 1) for i in range(30)},
            mobile_states=range(32),
        )
        pop = Population(2)
        graph = explore(chain, pop, [Configuration((0, 0))])
        components = strongly_connected_components(graph)
        assert all(len(c) == 1 for c in components)


class TestCheckNamingGlobal:
    def test_asymmetric_protocol_passes(self):
        protocol = AsymmetricNamingProtocol(3)
        pop = Population(3)
        verdict = check_naming_global(
            protocol, pop, arbitrary_initial_configurations(protocol, pop)
        )
        assert verdict.solves
        assert verdict.sink_scc_count > 0
        assert verdict.terminal_examples

    def test_prop13_passes_for_n_3(self):
        protocol = SymmetricGlobalNamingProtocol(3)
        pop = Population(3)
        verdict = check_naming_global(
            protocol, pop, arbitrary_initial_configurations(protocol, pop)
        )
        assert verdict.solves

    def test_prop13_fails_for_n_2_with_livelock_reason(self):
        protocol = SymmetricGlobalNamingProtocol(3)
        pop = Population(2)
        verdict = check_naming_global(
            protocol, pop, [Configuration((1, 1))]
        )
        assert not verdict.solves
        assert "names never stabilize" in verdict.reason
        assert verdict.counterexample is not None

    def test_do_nothing_protocol_fails_on_duplicates(self):
        protocol = TableProtocol({}, mobile_states=[0, 1])
        pop = Population(2)
        verdict = check_naming_global(
            protocol, pop, [Configuration((0, 0))]
        )
        assert not verdict.solves
        assert "duplicate names" in verdict.reason

    def test_do_nothing_protocol_passes_from_distinct_start(self):
        # Vacuously correct when already named: sink SCC is correct.
        protocol = TableProtocol({}, mobile_states=[0, 1])
        pop = Population(2)
        verdict = check_naming_global(
            protocol, pop, [Configuration((0, 1))]
        )
        assert verdict.solves

    def test_oscillating_names_detected_as_failure(self):
        # (0,1) <-> (1,0) swap forever: distinct at every instant but the
        # names never stabilize, so naming is NOT solved.
        swap = TableProtocol(
            {(0, 1): (1, 0), (1, 0): (0, 1)}, mobile_states=[0, 1]
        )
        pop = Population(2)
        verdict = check_naming_global(swap, pop, [Configuration((0, 1))])
        assert not verdict.solves
        assert "never stabilize" in verdict.reason
