"""Tests for weakly fair counterexample synthesis."""

import pytest

from repro.analysis.counterexample import (
    synthesize_weak_counterexample,
    verify_counterexample,
)
from repro.analysis.reachability import arbitrary_initial_configurations
from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.global_naming import GlobalNamingProtocol
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.protocol import TableProtocol
from repro.engine.simulator import Simulator
from repro.errors import VerificationError
from repro.schedulers.adversarial import FixedSequenceScheduler


def all_starts(protocol, population, leaders=None):
    return list(
        arbitrary_initial_configurations(protocol, population, leaders)
    )


class TestLivelockSynthesis:
    @pytest.fixture(scope="class")
    def prop13_cex(self):
        protocol = SymmetricGlobalNamingProtocol(3)
        population = Population(3)
        cex = synthesize_weak_counterexample(
            protocol, population, all_starts(protocol, population)
        )
        return protocol, population, cex

    def test_flagged_as_livelock(self, prop13_cex):
        _, _, cex = prop13_cex
        assert cex.livelock

    def test_cycle_covers_all_pairs(self, prop13_cex):
        _, population, cex = prop13_cex
        met = {frozenset(m) for m in cex.cycle}
        assert met >= {frozenset(p) for p in population.unordered_pairs()}

    def test_verifies_by_replay(self, prop13_cex):
        protocol, population, cex = prop13_cex
        assert verify_counterexample(protocol, population, cex)

    def test_simulator_replay_never_converges(self, prop13_cex):
        protocol, population, cex = prop13_cex
        scheduler = FixedSequenceScheduler(population, cex.cycle)
        assert scheduler.weakly_fair  # the cycle covers every pair
        simulator = Simulator(
            protocol, population, scheduler, NamingProblem()
        )
        result = simulator.run(cex.recurrent, max_interactions=60_000)
        assert not result.converged

    def test_schedule_concatenates(self, prop13_cex):
        _, _, cex = prop13_cex
        assert cex.schedule(2) == cex.prefix + cex.cycle + cex.cycle


class TestQuietSynthesis:
    def test_null_protocol_duplicates(self):
        protocol = TableProtocol({}, mobile_states=[0, 1])
        population = Population(2)
        cex = synthesize_weak_counterexample(
            protocol, population, [Configuration((0, 0))]
        )
        assert not cex.livelock
        assert not cex.recurrent.names_distinct()
        assert verify_counterexample(protocol, population, cex)

    def test_protocol3_fails_weak_at_full_population(self):
        """Theorem 11 watched live: Protocol 3 (P states) cannot name
        N = P under weak fairness; the synthesizer produces the schedule."""
        protocol = GlobalNamingProtocol(2)
        population = Population(2, has_leader=True)
        cex = synthesize_weak_counterexample(
            protocol,
            population,
            all_starts(
                protocol, population, [protocol.initial_leader_state()]
            ),
        )
        assert verify_counterexample(protocol, population, cex)
        scheduler = FixedSequenceScheduler(population, cex.cycle)
        simulator = Simulator(
            protocol, population, scheduler, NamingProblem()
        )
        result = simulator.run(cex.recurrent, max_interactions=40_000)
        assert not result.converged


class TestNoCounterexample:
    def test_correct_protocol_raises(self):
        protocol = AsymmetricNamingProtocol(3)
        population = Population(3)
        with pytest.raises(VerificationError, match="solves naming"):
            synthesize_weak_counterexample(
                protocol, population, all_starts(protocol, population)
            )

    def test_empty_initials_rejected(self):
        protocol = AsymmetricNamingProtocol(2)
        with pytest.raises(VerificationError):
            synthesize_weak_counterexample(protocol, Population(2), [])
