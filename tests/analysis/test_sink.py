"""Tests for the sink-state analysis (Section 3.1 machinery)."""

import pytest

from repro.analysis.sink import (
    homonym_chain,
    is_reduced,
    reduce_homonyms,
    sink_states,
    unique_sink,
)
from repro.core.counting import CountingProtocol
from repro.core.global_naming import GlobalNamingProtocol
from repro.core.selfstab_naming import SelfStabilizingNamingProtocol
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.protocol import TableProtocol
from repro.errors import VerificationError


class TestHomonymChain:
    def test_chain_to_sink(self):
        protocol = SelfStabilizingNamingProtocol(4)
        chain = homonym_chain(protocol, 3)
        assert chain.states == (3, 0)
        assert chain.cycle == (0,)

    def test_chain_from_sink_is_trivial(self):
        protocol = SelfStabilizingNamingProtocol(4)
        chain = homonym_chain(protocol, 0)
        assert chain.states == (0,)
        assert chain.cycle_start == 0

    def test_prop13_has_longer_cycle(self):
        protocol = SymmetricGlobalNamingProtocol(4)
        chain = homonym_chain(protocol, 2)
        # (2,2) -> (4,4) -> (1,1) -> (4,4): cycle {4, 1}.
        assert set(chain.cycle) == {4, 1}

    def test_asymmetric_on_chain_rejected(self):
        protocol = TableProtocol({(0, 0): (0, 1)}, mobile_states=[0, 1])
        with pytest.raises(VerificationError, match="not symmetric"):
            homonym_chain(protocol, 0)


class TestSinkStates:
    @pytest.mark.parametrize(
        "protocol_cls", [CountingProtocol, SelfStabilizingNamingProtocol,
                         GlobalNamingProtocol]
    )
    def test_leader_protocols_have_unique_sink_zero(self, protocol_cls):
        protocol = protocol_cls(4)
        assert sink_states(protocol) == {0}
        assert unique_sink(protocol) == 0

    def test_prop13_protocol_has_no_unique_sink(self):
        """Prop. 13's protocol uses P + 1 states exactly because its
        homonym cycle is not a single sink (it alternates P <-> 1)."""
        protocol = SymmetricGlobalNamingProtocol(4)
        assert len(sink_states(protocol)) > 1
        with pytest.raises(VerificationError, match="unique sink"):
            unique_sink(protocol)

    def test_cycle_without_self_loop_rejected(self):
        # 0 -> 1 -> 0: states on a cycle but no immediate self-loop.
        protocol = TableProtocol(
            {(0, 0): (1, 1), (1, 1): (0, 0)},
            mobile_states=[0, 1],
            symmetric=True,
        )
        with pytest.raises(VerificationError):
            unique_sink(protocol)


class TestReduceHomonyms:
    def test_reduces_all_non_sink_homonyms(self):
        protocol = SelfStabilizingNamingProtocol(4)
        pop = Population(5, has_leader=True)
        config = Configuration.from_states(
            pop, (2, 2, 3, 3, 1), protocol.initial_leader_state()
        )
        reduced, interactions = reduce_homonyms(protocol, config, sink=0)
        assert is_reduced(reduced, sink=0)
        assert reduced.mobile_states == (0, 0, 0, 0, 1)
        assert len(interactions) == 2

    def test_already_reduced_is_noop(self):
        protocol = SelfStabilizingNamingProtocol(4)
        pop = Population(3, has_leader=True)
        config = Configuration.from_states(
            pop, (0, 0, 2), protocol.initial_leader_state()
        )
        reduced, interactions = reduce_homonyms(protocol, config, sink=0)
        assert reduced == config
        assert interactions == []

    def test_interactions_replay_to_reduced(self):
        protocol = SelfStabilizingNamingProtocol(5)
        pop = Population(4, has_leader=True)
        config = Configuration.from_states(
            pop, (4, 4, 4, 2), protocol.initial_leader_state()
        )
        reduced, interactions = reduce_homonyms(protocol, config, sink=0)
        # Replaying the interactions from the start reaches `reduced`.
        replayed = config
        for x, y in interactions:
            p, q = replayed.state_of(x), replayed.state_of(y)
            replayed = replayed.apply(x, y, protocol.transition(p, q))
        assert replayed == reduced

    def test_unreachable_sink_detected(self):
        protocol = TableProtocol(
            {(1, 1): (2, 2), (2, 2): (1, 1)},
            mobile_states=[0, 1, 2],
            symmetric=True,
        )
        config = Configuration((1, 1, 0))
        with pytest.raises(VerificationError, match="never reaches"):
            reduce_homonyms(protocol, config, sink=0)


class TestIsReduced:
    def test_sink_homonyms_allowed(self):
        assert is_reduced(Configuration((0, 0, 1)), sink=0)

    def test_non_sink_homonyms_rejected(self):
        assert not is_reduced(Configuration((2, 2, 0)), sink=0)

    def test_distinct_names_are_reduced(self):
        assert is_reduced(Configuration((1, 2, 3)), sink=0)
