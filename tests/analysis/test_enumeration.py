"""Tests for exhaustive protocol enumeration (the lower-bound machinery)."""

import pytest

from repro.analysis.enumeration import (
    EnumLeaderState,
    asymmetric_leaderless_protocols,
    protocol_solves_naming,
    search,
    symmetric_leaderless_protocols,
    symmetric_leadered_protocols,
)
from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.spec import Fairness, MobileInit
from repro.engine.protocol import (
    TableProtocol,
    verify_protocol,
    verify_symmetric,
)


class TestGenerators:
    def test_symmetric_family_count_p2(self):
        protocols = list(symmetric_leaderless_protocols(2))
        # 2 diagonal choices per state (2 states) x 4 off-diagonal = 16.
        assert len(protocols) == 16

    def test_symmetric_family_count_p3(self):
        # 3^3 diagonals x 9^3 off-diagonals = 19683.
        count = sum(1 for _ in symmetric_leaderless_protocols(3))
        assert count == 19683

    def test_symmetric_family_members_are_symmetric(self):
        for protocol in symmetric_leaderless_protocols(2):
            verify_symmetric(protocol)
            verify_protocol(protocol)

    def test_asymmetric_family_count_p2(self):
        assert sum(1 for _ in asymmetric_leaderless_protocols(2)) == 256

    def test_asymmetric_family_contains_prop12_rule(self):
        reference = AsymmetricNamingProtocol(2)
        found = any(
            all(
                protocol.transition(p, q) == reference.transition(p, q)
                for p in range(2)
                for q in range(2)
            )
            for protocol in asymmetric_leaderless_protocols(2)
        )
        assert found

    def test_leadered_family_count(self):
        # 16 mobile tables x (4 inputs -> 4 outputs each) = 16 * 256.
        count = sum(1 for _ in symmetric_leadered_protocols(2, 2))
        assert count == 4096

    def test_leadered_family_well_formed(self):
        sample = list(symmetric_leadered_protocols(2, 1))
        assert len(sample) == 16 * 4
        for protocol in sample[:32]:
            verify_protocol(protocol)


class TestProtocolSolvesNaming:
    def test_prop12_instance_solves(self):
        reference = AsymmetricNamingProtocol(2)
        table = {
            (p, q): reference.transition(p, q)
            for p in range(2)
            for q in range(2)
            if reference.transition(p, q) != (p, q)
        }
        protocol = TableProtocol(table, mobile_states=[0, 1])
        assert protocol_solves_naming(
            protocol, sizes=[2], fairness=Fairness.WEAK
        )
        assert protocol_solves_naming(
            protocol, sizes=[2, 1], fairness=Fairness.GLOBAL
        )

    def test_null_protocol_fails_arbitrary_but_uniform_also_fails(self):
        protocol = TableProtocol({}, mobile_states=[0, 1])
        assert not protocol_solves_naming(
            protocol, sizes=[2], fairness=Fairness.GLOBAL
        )
        assert not protocol_solves_naming(
            protocol,
            sizes=[2],
            fairness=Fairness.GLOBAL,
            mobile_init=MobileInit.UNIFORM,
        )

    def test_uniform_designer_choice_can_rescue(self):
        """A protocol that works only from the all-zeros start: uniform
        initialization (designer picks 0) accepts it, arbitrary rejects."""
        # On two states: (0,0) -> (0,1); everything else null.
        protocol = TableProtocol(
            {(0, 0): (0, 1)}, mobile_states=[0, 1]
        )
        assert protocol_solves_naming(
            protocol,
            sizes=[2],
            fairness=Fairness.GLOBAL,
            mobile_init=MobileInit.UNIFORM,
        )
        assert not protocol_solves_naming(
            protocol, sizes=[2], fairness=Fairness.GLOBAL
        )


class TestSearch:
    def test_prop2_at_p2_no_symmetric_solver(self):
        outcome = search(
            symmetric_leaderless_protocols(2),
            sizes=[2],
            fairness=Fairness.GLOBAL,
        )
        assert outcome.total == 16
        assert not outcome.any_solves

    def test_prop2_uniform_variant(self):
        outcome = search(
            symmetric_leaderless_protocols(2),
            sizes=[2],
            fairness=Fairness.GLOBAL,
            mobile_init=MobileInit.UNIFORM,
        )
        assert not outcome.any_solves

    def test_asymmetric_solvers_exist_and_are_collected(self):
        outcome = search(
            asymmetric_leaderless_protocols(2),
            sizes=[2],
            fairness=Fairness.WEAK,
        )
        assert outcome.any_solves
        assert len(outcome.solving) >= 1
        for protocol in outcome.solving:
            assert protocol_solves_naming(
                protocol, sizes=[2], fairness=Fairness.WEAK
            )

    def test_stop_after_truncates(self):
        outcome = search(
            symmetric_leaderless_protocols(3),
            sizes=[2],
            fairness=Fairness.GLOBAL,
            stop_after=50,
        )
        assert outcome.total == 50

    def test_theorem11_at_p2_l1(self):
        outcome = search(
            symmetric_leadered_protocols(2, 1),
            sizes=[2],
            fairness=Fairness.WEAK,
        )
        assert outcome.total == 64
        assert not outcome.any_solves

    def test_prop4_arbitrary_leader_global(self):
        outcome = search(
            symmetric_leadered_protocols(2, 1),
            sizes=[2],
            fairness=Fairness.GLOBAL,
            arbitrary_leader=True,
        )
        assert not outcome.any_solves

    def test_checked_sizes_recorded(self):
        outcome = search(
            symmetric_leaderless_protocols(2),
            sizes=[2],
            fairness=Fairness.GLOBAL,
        )
        assert outcome.checked_sizes == (2,)


class TestEnumLeaderState:
    def test_is_leader_state(self):
        from repro.engine.state import is_leader_state

        assert is_leader_state(EnumLeaderState(0))
        assert EnumLeaderState(0) != EnumLeaderState(1)
