"""Tests for the Proposition 12 potential function."""

import pytest

from repro.analysis.potential import (
    hole_distance,
    hole_distance_of_agent,
    holes,
    potential,
    potential_upper_bound,
)
from repro.errors import VerificationError


class TestHoles:
    def test_full_occupancy_no_holes(self):
        assert holes((0, 1, 2), 3) == set()

    def test_missing_values_are_holes(self):
        assert holes((0, 0, 2), 4) == {1, 3}

    def test_rejects_out_of_range_states(self):
        with pytest.raises(VerificationError):
            holes((0, 5), 3)


class TestHoleDistance:
    def test_zero_when_no_holes(self):
        assert hole_distance_of_agent(1, set(), 4) == 0

    def test_distance_to_next_hole(self):
        # Holes {3}: agent at 1 needs j = 2.
        assert hole_distance_of_agent(1, {3}, 4) == 2

    def test_wraps_modulo(self):
        # Holes {0}: agent at 3 wraps, j = 1.
        assert hole_distance_of_agent(3, {0}, 4) == 1

    def test_configuration_distance_sums_agents(self):
        # States (1, 1, 3), bound 4, holes {0, 2}:
        # agents at 1: j=1 each; agent at 3: j=1. Total 3.
        assert hole_distance((1, 1, 3), 4) == 3

    def test_paper_example_bound(self):
        assert potential_upper_bound(5) == (5, 20)

    def test_potential_pairs(self):
        assert potential((1, 1, 3), 4) == (2, 3)
        assert potential((0, 1, 2, 3), 4) == (0, 0)


class TestMonotonicity:
    def test_rule_application_decreases_potential(self):
        bound = 5
        # Apply (s, s) -> (s, s+1) by hand on a concrete chain.
        states = [0, 0, 0, 0]
        current = potential(states, bound)
        # A homonym advances: 0 -> 1.
        for step in range(8):
            dup = next(
                (s for s in set(states) if states.count(s) > 1), None
            )
            if dup is None:
                break
            states[states.index(dup)] = (dup + 1) % bound
            after = potential(states, bound)
            assert after < current
            current = after
        assert len(set(states)) == len(states)
