"""Tests for execution surgery (Lemma 5 / Lemma 8 mechanized)."""

import pytest

from repro.analysis.surgery import (
    hidden_agent_demo,
    replay_rule_trace,
    rule_trace_of,
)
from repro.core.counting import CountingProtocol
from repro.core.selfstab_naming import SelfStabilizingNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.simulator import Simulator
from repro.engine.trace import Trace
from repro.errors import VerificationError
from repro.schedulers.round_robin import RoundRobinScheduler


def converged_run(protocol, population, initial, budget=500_000):
    scheduler = RoundRobinScheduler(population)
    simulator = Simulator(protocol, population, scheduler, NamingProblem())
    trace = Trace(capacity=None, record_null=True)
    result = simulator.run(initial, max_interactions=budget, trace=trace)
    assert result.converged
    meetings = [(r.initiator, r.responder) for r in trace.records]
    return result, meetings


class TestRuleTrace:
    def test_rule_trace_skips_null_meetings(self):
        protocol = SelfStabilizingNamingProtocol(3)
        population = Population(3, has_leader=True)
        initial = Configuration.uniform(
            population, 0, protocol.initial_leader_state()
        )
        result, meetings = converged_run(protocol, population, initial)
        steps = rule_trace_of(protocol, initial, meetings)
        assert 0 < len(steps) < len(meetings)
        assert all(
            protocol.transition(p, q) != (p, q) for p, q in steps
        )

    def test_replay_reproduces_multiset(self):
        """Replaying the rule trace with *any* casting reaches an
        equivalent configuration - uniformity in action."""
        protocol = SelfStabilizingNamingProtocol(3)
        population = Population(3, has_leader=True)
        initial = Configuration.uniform(
            population, 0, protocol.initial_leader_state()
        )
        result, meetings = converged_run(protocol, population, initial)
        steps = rule_trace_of(protocol, initial, meetings)
        replayed, realized = replay_rule_trace(
            protocol, population, initial, steps
        )
        assert replayed.is_equivalent(result.final_configuration)
        assert len(realized) == len(steps)

    def test_replay_rejects_null_rules(self):
        protocol = CountingProtocol(3)
        population = Population(2, has_leader=True)
        initial = Configuration.uniform(
            population, 0, protocol.initial_leader_state()
        )
        # (0, 0) is castable here and null for Protocol 1.
        with pytest.raises(VerificationError, match="null rule"):
            replay_rule_trace(protocol, population, initial, [(0, 0)])

    def test_replay_rejects_uncastable_rule(self):
        protocol = CountingProtocol(3)
        population = Population(1, has_leader=True)
        initial = Configuration.uniform(
            population, 0, protocol.initial_leader_state()
        )
        # The only 0-agent is the avoided one: the leader rule on a
        # 0-agent cannot be cast.
        leader = protocol.initial_leader_state()
        with pytest.raises(VerificationError, match="cannot be cast"):
            replay_rule_trace(
                protocol, population, initial, [(leader, 0)], avoid=0
            )


class TestHiddenAgent:
    @pytest.fixture(scope="class")
    def demo(self):
        return hidden_agent_demo(
            CountingProtocol, bound=5, n_visible=3, sink=0
        )

    def test_leader_cannot_tell_the_worlds_apart(self, demo):
        """Lemma 5's conclusion: after the visible run, the N-agent and
        (N+1)-agent worlds carry identical leader states."""
        assert demo.fooled
        assert (
            demo.visible_final.leader_state
            == demo.padded_final.leader_state
        )

    def test_leader_undercounts_while_fooled(self, demo):
        assert demo.padded_final.leader_state.n == 3  # true size is 4

    def test_hidden_agent_still_in_sink(self, demo):
        assert demo.padded_final.mobile_states[-1] == 0

    def test_weak_fairness_unmasks_the_hidden_agent(self, demo):
        """Why Protocol 1 is nevertheless correct: fairness eventually
        forces the hidden agent to interact, and the guess is corrected."""
        assert demo.recovered_count == 4

    def test_construction_works_at_other_sizes(self):
        demo = hidden_agent_demo(
            CountingProtocol, bound=6, n_visible=4, sink=0, seed=3
        )
        assert demo.fooled
        assert demo.recovered_count == 5
