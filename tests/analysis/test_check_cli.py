"""Tests for the ``repro check`` CLI and its verdict memoization."""

import json

import pytest

from repro.analysis.check import cached_check, main as check_main
from repro.analysis.symbolic import SymbolicVerdict
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.serve.cache import ArtifactCache


class TestCheckCli:
    def test_default_properties_follow_the_model_claim(self, capsys):
        # A global-fairness model is not checked for weak-fairness
        # liveness by default (Prop. 13 legitimately livelocks there).
        assert check_main(["-P", "5", "-N", "3"]) == 0
        out = capsys.readouterr().out
        assert "PASS: reach" in out
        assert "PASS: sinks" in out
        assert "liveness" not in out

    def test_weak_model_includes_liveness(self, capsys):
        code = check_main(
            ["--fairness", "weak", "--leader", "initialized",
             "-P", "5", "-N", "3"]
        )
        assert code == 0
        assert "PASS: liveness" in capsys.readouterr().out

    def test_explicit_property_override_fails_with_witness(self, capsys):
        # Forcing the liveness check onto the global-fairness protocol
        # must produce a replay-validated counterexample and exit 1.
        code = check_main(["-P", "4", "-N", "3", "--property", "liveness"])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL: liveness" in out
        assert "counterexample (weak-livelock)" in out
        assert "replayed on the reference simulator" in out

    def test_infeasible_model_exits_2(self, capsys):
        code = check_main(
            ["--fairness", "weak", "--leader", "none", "-P", "4"]
        )
        assert code == 2
        assert "infeasible" in capsys.readouterr().out

    def test_budget_escape_exits_2(self, capsys):
        # P=32 with a non-initialized leader declares ~1.5e11 leader
        # states; the checker must refuse cleanly, not enumerate them.
        code = check_main(
            ["--fairness", "weak", "--leader", "non-initialized",
             "-P", "32", "-N", "3"]
        )
        assert code == 2
        assert "check aborted" in capsys.readouterr().out

    def test_json_output(self, capsys):
        assert check_main(["-P", "4", "-N", "3", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["bound"] == 4
        assert {v["prop"] for v in data["verdicts"]} == {"reach", "sinks"}
        assert all(v["holds"] for v in data["verdicts"])

    def test_dispatch_through_main_cli(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["check", "-P", "4", "-N", "3"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_cache_dir_round_trip(self, tmp_path, capsys):
        args = ["-P", "5", "-N", "3", "--cache-dir", str(tmp_path)]
        assert check_main(args) == 0
        capsys.readouterr()
        assert check_main(args) == 0  # served from the artifact cache
        assert "PASS" in capsys.readouterr().out
        assert list(tmp_path.glob("check/*/*.pkl"))


class TestCachedCheck:
    def test_verdict_memoized_by_content(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        first = cached_check(
            SymmetricGlobalNamingProtocol(4), "reach", 3,
            mobile_mode="arbitrary", cache=cache,
        )
        second = cached_check(
            SymmetricGlobalNamingProtocol(4), "reach", 3,
            mobile_mode="arbitrary", cache=cache,
        )
        assert isinstance(first, SymbolicVerdict) and first.holds
        assert second.holds == first.holds
        assert cache.stats.hits >= 1

    def test_distinct_parameters_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        protocol = SymmetricGlobalNamingProtocol(4)
        cached_check(protocol, "reach", 3, cache=cache)
        before = cache.stats.misses
        cached_check(protocol, "sinks", 3, cache=cache)
        assert cache.stats.misses > before

    def test_no_cache_falls_through(self):
        verdict = cached_check(
            SymmetricGlobalNamingProtocol(3), "reach", 3, cache=None
        )
        assert verdict.holds
