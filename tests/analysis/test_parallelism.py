"""Tests for parallel-time analysis."""

from repro.analysis.parallelism import (
    ParallelismReport,
    analyze_trace,
    greedy_rounds,
)
from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.simulator import Simulator
from repro.engine.trace import InteractionRecord, Trace
from repro.schedulers.random_pair import RandomPairScheduler


class TestGreedyRounds:
    def test_disjoint_meetings_share_a_round(self):
        rounds = greedy_rounds([(0, 1), (2, 3), (4, 5)])
        assert rounds == [[(0, 1), (2, 3), (4, 5)]]

    def test_conflicting_meetings_split_rounds(self):
        rounds = greedy_rounds([(0, 1), (1, 2)])
        assert rounds == [[(0, 1)], [(1, 2)]]

    def test_order_preserved_across_conflicts(self):
        # (0,1) then (2,3) then (0,2): the third conflicts with both.
        rounds = greedy_rounds([(0, 1), (2, 3), (0, 2)])
        assert rounds == [[(0, 1), (2, 3)], [(0, 2)]]

    def test_empty(self):
        assert greedy_rounds([]) == []

    def test_all_meetings_kept(self):
        meetings = [(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)]
        rounds = greedy_rounds(meetings)
        flattened = [m for r in rounds for m in r]
        assert flattened == meetings


class TestAnalyzeTrace:
    def _record(self, step, x, y, null=False):
        if null:
            return InteractionRecord(step, x, y, 0, 1, 0, 1)
        return InteractionRecord(step, x, y, 5, 5, 5, 6)

    def test_null_records_excluded(self):
        records = [
            self._record(0, 0, 1),
            self._record(1, 2, 3, null=True),
            self._record(2, 2, 3),
        ]
        report = analyze_trace(records, n_agents=4)
        assert report.interactions == 2
        assert report.rounds == 1  # (0,1) and (2,3) are disjoint

    def test_normalized_time(self):
        report = ParallelismReport(interactions=40, rounds=10, n_agents=8)
        assert report.normalized_time == 5.0
        assert report.speedup == 4.0

    def test_degenerate_report(self):
        report = ParallelismReport(0, 0, 0)
        assert report.normalized_time == 0.0
        assert report.speedup == 0.0

    def test_real_execution_gets_a_speedup(self):
        protocol = AsymmetricNamingProtocol(8)
        pop = Population(8)
        simulator = Simulator(
            protocol, pop, RandomPairScheduler(pop, seed=5), NamingProblem()
        )
        trace = Trace(capacity=None)
        result = simulator.run(
            Configuration.uniform(pop, 0), trace=trace
        )
        assert result.converged
        report = analyze_trace(trace.records, pop.size)
        assert report.rounds <= report.interactions
        assert report.speedup >= 1.0
