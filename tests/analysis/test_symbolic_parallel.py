"""The sharded frontier expansion must be bit-identical to serial.

The parallel path of :func:`repro.analysis.symbolic.reach` partitions
each level's mobile-mobile expansion across worker processes and merges
the batches with a vectorized dedup whose append order reproduces the
serial successor loop exactly.  These tests force the sharded path onto
instances small enough to enumerate (``_REACH_PARALLEL_MIN_WORK`` is
patched down) and compare every observable of the resulting
:class:`~repro.analysis.symbolic.ReachSet` - node rows and ids,
predecessor tree, and edge lists - against the serial run.
"""

import numpy as np
import pytest

from repro.analysis import symbolic as S
from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.leader_uniform import LeaderUniformNamingProtocol
from repro.engine.parallel import shm_available
from repro.errors import BackendFallbackWarning, VerificationError

pytestmark = pytest.mark.skipif(
    not shm_available()[0], reason="POSIX shared memory unavailable"
)


@pytest.fixture
def force_sharding(monkeypatch):
    """Shard every level, however small the frontier."""
    monkeypatch.setattr(S, "_REACH_PARALLEL_MIN_WORK", 1)


def assert_reach_sets_equal(a, b):
    assert len(a.rows) == len(b.rows)
    for row_a, row_b in zip(a.rows, b.rows):
        assert np.array_equal(row_a, row_b)
    assert a.index == b.index
    assert a.n_roots == b.n_roots
    assert a.pred == b.pred
    assert a.pred_rule == b.pred_rule
    assert a.edges_src == b.edges_src
    assert a.edges_dst == b.edges_dst
    assert a.edges_rule == b.edges_rule


class TestShardedReachIdentity:
    @pytest.mark.parametrize("track_edges", [False, True])
    def test_mobile_only_protocol(self, force_sharding, track_edges):
        system = S.CountsSystem(AsymmetricNamingProtocol(4))
        roots = system.root_matrix(5)
        serial = S.reach(system, roots, track_edges=track_edges)
        system2 = S.CountsSystem(AsymmetricNamingProtocol(4))
        sharded = S.reach(
            system2,
            system2.root_matrix(5),
            track_edges=track_edges,
            n_jobs=2,
        )
        assert_reach_sets_equal(serial, sharded)

    def test_leadered_protocol(self, force_sharding):
        # Leader-mobile rules always expand in the parent; only the
        # mobile-mobile grid is sharded.  The merge must interleave
        # both batch streams in serial order.
        system = S.CountsSystem(LeaderUniformNamingProtocol(3))
        roots = system.root_matrix(4)
        serial = S.reach(system, roots, track_edges=True)
        system2 = S.CountsSystem(LeaderUniformNamingProtocol(3))
        sharded = S.reach(
            system2, system2.root_matrix(4), track_edges=True, n_jobs=2
        )
        assert_reach_sets_equal(serial, sharded)

    def test_max_nodes_overflow_point_is_identical(self, force_sharding):
        # A single root, so the frontier genuinely grows past it (roots
        # themselves are exempt from the cap).
        system = S.CountsSystem(AsymmetricNamingProtocol(4))
        roots = system.root_matrix(5)[:1]
        serial = S.reach(system, roots)
        cap = len(serial.rows) - 1
        assert cap >= 1
        with pytest.raises(VerificationError, match=str(cap)):
            S.reach(
                S.CountsSystem(AsymmetricNamingProtocol(4)),
                roots,
                max_nodes=cap,
            )
        with pytest.raises(VerificationError, match=str(cap)):
            S.reach(
                S.CountsSystem(AsymmetricNamingProtocol(4)),
                roots,
                max_nodes=cap,
                n_jobs=2,
            )

    def test_verdicts_identical_across_widths(self, force_sharding):
        protocol = AsymmetricNamingProtocol(4)
        for prop in ("reach", "sinks"):
            serial = S.check_property(protocol, prop, 4)
            sharded = S.check_property(protocol, prop, 4, n_jobs=2)
            assert serial.holds == sharded.holds
            assert serial.explored == sharded.explored


class TestShardingFallback:
    def test_no_shm_warns_and_stays_serial(self, monkeypatch):
        from repro.engine import parallel

        monkeypatch.setattr(
            parallel, "_SHM_PROBE", (False, "forced by test")
        )
        system = S.CountsSystem(AsymmetricNamingProtocol(4))
        roots = system.root_matrix(5)
        with pytest.warns(BackendFallbackWarning, match="forced by test"):
            fallen = S.reach(system, roots, n_jobs=2)
        serial = S.reach(
            S.CountsSystem(AsymmetricNamingProtocol(4)), roots
        )
        assert_reach_sets_equal(serial, fallen)

    def test_small_frontiers_stay_serial_without_patching(self):
        # Below _REACH_PARALLEL_MIN_WORK per level no pool is spawned,
        # but the result is still the sharded-entry-point result.
        system = S.CountsSystem(AsymmetricNamingProtocol(4))
        roots = system.root_matrix(4)
        serial = S.reach(
            S.CountsSystem(AsymmetricNamingProtocol(4)), roots
        )
        sharded = S.reach(system, roots, n_jobs=2)
        assert_reach_sets_equal(serial, sharded)
