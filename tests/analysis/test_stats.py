"""Tests for convergence statistics helpers."""

import pytest

from repro.analysis.stats import convergence_sample, quantile, summarize
from repro.errors import VerificationError


class TestQuantile:
    def test_median_odd(self):
        assert quantile([1, 2, 3], 0.5) == 2

    def test_median_even_interpolates(self):
        assert quantile([1, 2, 3, 4], 0.5) == 2.5

    def test_extremes(self):
        values = [3, 7, 9]
        assert quantile(values, 0.0) == 3
        assert quantile(values, 1.0) == 9

    def test_single_value(self):
        assert quantile([42], 0.9) == 42

    def test_rejects_empty(self):
        with pytest.raises(VerificationError):
            quantile([], 0.5)

    def test_rejects_out_of_range_q(self):
        with pytest.raises(VerificationError):
            quantile([1], 1.5)


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize([2, 4, 4, 4, 5, 5, 7, 9])
        assert summary.count == 8
        assert summary.mean == pytest.approx(5.0)
        assert summary.minimum == 2
        assert summary.maximum == 9
        assert summary.median == pytest.approx(4.5)

    def test_single_sample(self):
        summary = summarize([10])
        assert summary.stdev == 0.0
        assert summary.p90 == 10

    def test_rejects_empty(self):
        with pytest.raises(VerificationError):
            summarize([])

    def test_str_mentions_fields(self):
        text = str(summarize([1, 2, 3]))
        assert "mean" in text and "p90" in text


class TestConvergenceSample:
    class _FakeResult:
        def __init__(self, converged, at):
            self.converged = converged
            self.convergence_interaction = at
            self.interactions = at or 100

    def test_collects_convergence_points(self):
        results = {1: self._FakeResult(True, 10), 2: self._FakeResult(True, 20)}
        sample = convergence_sample(lambda s: results[s], seeds=[1, 2])
        assert sample == [10, 20]

    def test_raises_on_nonconvergence(self):
        with pytest.raises(VerificationError):
            convergence_sample(
                lambda s: self._FakeResult(False, None), seeds=[1]
            )

    def test_skips_when_not_required(self):
        results = {
            1: self._FakeResult(True, 10),
            2: self._FakeResult(False, None),
        }
        sample = convergence_sample(
            lambda s: results[s], seeds=[1, 2], require_convergence=False
        )
        assert sample == [10]
