"""Tests for configuration-graph construction."""

import pytest

from repro.analysis.reachability import (
    _GRAPH_CACHE,
    arbitrary_initial_configurations,
    explore,
    one_step_edges,
    seed_configuration_graph,
    uniform_initial_configurations,
)
from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.counting import CountingProtocol
from repro.core.leader_uniform import LeaderUniformNamingProtocol
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.errors import VerificationError


class TestOneStepEdges:
    def test_null_transitions_excluded(self):
        protocol = AsymmetricNamingProtocol(3)
        pop = Population(3)
        config = Configuration((0, 1, 2))
        assert one_step_edges(protocol, pop, config) == []

    def test_homonym_edge_found_in_both_orders(self):
        protocol = AsymmetricNamingProtocol(3)
        pop = Population(2)
        config = Configuration((1, 1))
        edges = one_step_edges(protocol, pop, config)
        assert len(edges) == 2  # (0,1) and (1,0) both non-null
        targets = {e.target.states for e in edges}
        assert targets == {(1, 2), (2, 1)}

    def test_changes_mobile_flag(self):
        protocol = AsymmetricNamingProtocol(3)
        pop = Population(2)
        edges = one_step_edges(protocol, pop, Configuration((1, 1)))
        assert all(e.changes_mobile for e in edges)

    def test_leader_only_change_not_mobile(self):
        protocol = LeaderUniformNamingProtocol(2)
        pop = Population(1, has_leader=True)
        # Agent already named 1; leader counter 1 -> meeting is null;
        # craft instead the naming step, which changes BOTH.
        from repro.core.leader_uniform import CounterLeaderState

        config = Configuration.from_states(pop, (2,), CounterLeaderState(1))
        edges = one_step_edges(protocol, pop, config)
        assert edges and all(e.changes_mobile for e in edges)

    def test_pair_label_is_unordered(self):
        protocol = AsymmetricNamingProtocol(3)
        pop = Population(2)
        edges = one_step_edges(protocol, pop, Configuration((2, 2)))
        assert all(e.pair == frozenset({0, 1}) for e in edges)


class TestExplore:
    def test_reaches_all_asymmetric_configs(self):
        protocol = AsymmetricNamingProtocol(2)
        pop = Population(2)
        graph = explore(protocol, pop, [Configuration((0, 0))])
        # From (0,0): -> (0,1)/(1,0) silent; plus the start itself.
        assert Configuration((0, 0)) in graph.nodes
        assert Configuration((0, 1)) in graph.nodes
        assert Configuration((1, 0)) in graph.nodes
        assert len(graph.nodes) == 3

    def test_initial_recorded(self):
        protocol = AsymmetricNamingProtocol(2)
        pop = Population(2)
        start = Configuration((1, 1))
        graph = explore(protocol, pop, [start])
        assert graph.initial == {start}

    def test_edge_count_and_successors(self):
        protocol = SymmetricGlobalNamingProtocol(2)
        pop = Population(2)
        start = Configuration((1, 1))
        graph = explore(protocol, pop, [start])
        succs = list(graph.successors(start))
        assert succs == [Configuration((2, 2))]
        assert graph.edge_count() >= len(graph.nodes) - 1

    def test_node_budget_enforced(self):
        protocol = CountingProtocol(4)
        pop = Population(4, has_leader=True)
        starts = arbitrary_initial_configurations(
            protocol, pop, leader_states=[protocol.initial_leader_state()]
        )
        with pytest.raises(VerificationError, match="exceeded"):
            explore(protocol, pop, starts, max_nodes=5)

    def test_rejects_size_mismatch(self):
        protocol = AsymmetricNamingProtocol(2)
        pop = Population(2)
        with pytest.raises(VerificationError):
            explore(protocol, pop, [Configuration((0, 0, 0))])

    def test_rejects_when_no_initial(self):
        from repro.analysis.model_checker import check_naming_global

        protocol = AsymmetricNamingProtocol(2)
        pop = Population(2)
        with pytest.raises(VerificationError):
            check_naming_global(protocol, pop, [])


class TestInitialConfigurationGenerators:
    def test_arbitrary_counts_leaderless(self):
        protocol = AsymmetricNamingProtocol(3)
        pop = Population(2)
        configs = list(arbitrary_initial_configurations(protocol, pop))
        assert len(configs) == 9  # 3^2

    def test_arbitrary_counts_with_leader_space(self):
        protocol = CountingProtocol(2)
        pop = Population(1, has_leader=True)
        configs = list(arbitrary_initial_configurations(protocol, pop))
        leader_count = len(protocol.leader_state_space())
        assert len(configs) == 2 * leader_count

    def test_arbitrary_with_fixed_leader(self):
        protocol = CountingProtocol(2)
        pop = Population(2, has_leader=True)
        configs = list(
            arbitrary_initial_configurations(
                protocol, pop, leader_states=[protocol.initial_leader_state()]
            )
        )
        assert len(configs) == 4  # 2^2 mobiles, one leader state
        assert all(
            c.leader_state == protocol.initial_leader_state() for c in configs
        )

    def test_uniform_designated_state(self):
        protocol = LeaderUniformNamingProtocol(3)
        pop = Population(2, has_leader=True)
        configs = list(uniform_initial_configurations(protocol, pop))
        assert len(configs) == 1
        (config,) = configs
        assert config.mobile_states == (3, 3)

    def test_uniform_fallback_enumerates_values(self):
        protocol = AsymmetricNamingProtocol(3)  # no designated init
        pop = Population(2)
        configs = list(uniform_initial_configurations(protocol, pop))
        assert len(configs) == 3
        assert all(len(set(c.mobile_states)) == 1 for c in configs)


class TestGraphCache:
    """The fingerprint-keyed exploration cache behind :func:`explore`."""

    def setup_method(self):
        _GRAPH_CACHE.clear()

    def test_equal_instances_share_one_exploration(self):
        pop = Population(3)

        def roots(p):
            return list(arbitrary_initial_configurations(p, pop))

        first = explore(SymmetricGlobalNamingProtocol(3), pop,
                        roots(SymmetricGlobalNamingProtocol(3)))
        second = explore(SymmetricGlobalNamingProtocol(3), pop,
                         roots(SymmetricGlobalNamingProtocol(3)))
        assert second is first  # cache hit: same object, no re-explore

    def test_different_roots_explore_separately(self):
        protocol = SymmetricGlobalNamingProtocol(3)
        pop = Population(3)
        all_roots = list(arbitrary_initial_configurations(protocol, pop))
        full = explore(protocol, pop, all_roots)
        partial = explore(protocol, pop, all_roots[:1])
        assert partial is not full
        assert len(partial.nodes) <= len(full.nodes)

    def test_cached_graph_still_respects_max_nodes(self):
        protocol = SymmetricGlobalNamingProtocol(3)
        pop = Population(3)
        roots = list(arbitrary_initial_configurations(protocol, pop))
        graph = explore(protocol, pop, roots)
        with pytest.raises(VerificationError, match="exceeded"):
            explore(protocol, pop, roots, max_nodes=len(graph.nodes) - 1)

    def test_seeded_graph_is_returned_verbatim(self):
        protocol = SymmetricGlobalNamingProtocol(3)
        pop = Population(3)
        roots = list(arbitrary_initial_configurations(protocol, pop))
        graph = explore(protocol, pop, roots)
        _GRAPH_CACHE.clear()
        seed_configuration_graph(protocol, pop, roots, graph)
        assert explore(protocol, pop, roots) is graph
