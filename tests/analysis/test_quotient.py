"""Tests for the quotient (multiset) global-fairness checker."""

import pytest

from repro.analysis.model_checker import check_naming_global
from repro.analysis.quotient import (
    arbitrary_quotient_initials,
    check_naming_global_quotient,
    explore_quotient,
    quotient_of,
)
from repro.analysis.reachability import arbitrary_initial_configurations
from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.global_naming import GlobalNamingProtocol
from repro.core.selfstab_naming import SelfStabilizingNamingProtocol
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.protocol import TableProtocol
from repro.errors import VerificationError


class TestQuotientOf:
    def test_sorts_mobile_states(self):
        config = Configuration((3, 1, 2))
        assert quotient_of(config) == ((1, 2, 3), None)

    def test_keeps_leader_state(self):
        from repro.core.counting import CountingLeaderState

        leader = CountingLeaderState(1, 2)
        config = Configuration((3, 1, leader), leader_index=2)
        assert quotient_of(config) == ((1, 3), leader)

    def test_equivalent_configs_share_quotient(self):
        assert quotient_of(Configuration((1, 2))) == quotient_of(
            Configuration((2, 1))
        )


class TestExploreQuotient:
    def test_smaller_than_labelled_graph(self):
        protocol = SymmetricGlobalNamingProtocol(3)
        pop = Population(3)
        labelled = len(
            list(arbitrary_initial_configurations(protocol, pop))
        )
        quotient = len(arbitrary_quotient_initials(protocol, 3))
        assert quotient < labelled

    def test_rejects_empty_initials(self):
        protocol = AsymmetricNamingProtocol(2)
        with pytest.raises(VerificationError):
            explore_quotient(protocol, [])

    def test_node_budget(self):
        protocol = SelfStabilizingNamingProtocol(3)
        single_start = arbitrary_quotient_initials(protocol, 3)[:1]
        with pytest.raises(VerificationError, match="exceeded"):
            explore_quotient(protocol, single_start, max_nodes=2)


class TestAgreementWithLabelledChecker:
    """The quotient verdict must equal the labelled verdict - the
    uniform-lifting equivalence, checked mechanically."""

    CASES = [
        (SymmetricGlobalNamingProtocol(3), 3, None, True),
        (SymmetricGlobalNamingProtocol(3), 2, None, False),
        (SymmetricGlobalNamingProtocol(4), 3, None, True),
        (AsymmetricNamingProtocol(3), 3, None, True),
        (AsymmetricNamingProtocol(4), 2, None, True),
    ]

    @pytest.mark.parametrize(
        "protocol,n,leaders,expected",
        CASES,
        ids=lambda v: getattr(v, "display_name", str(v)),
    )
    def test_agreement(self, protocol, n, leaders, expected):
        pop = Population(n, protocol.requires_leader)
        labelled = check_naming_global(
            protocol,
            pop,
            arbitrary_initial_configurations(protocol, pop, leaders),
        )
        quotient = check_naming_global_quotient(
            protocol, arbitrary_quotient_initials(protocol, n, leaders)
        )
        assert labelled.solves == quotient.solves == expected

    def test_agreement_with_leader(self):
        protocol = GlobalNamingProtocol(3)
        pop = Population(3, has_leader=True)
        leaders = [protocol.initial_leader_state()]
        labelled = check_naming_global(
            protocol,
            pop,
            arbitrary_initial_configurations(protocol, pop, leaders),
        )
        quotient = check_naming_global_quotient(
            protocol, arbitrary_quotient_initials(protocol, 3, leaders)
        )
        assert labelled.solves and quotient.solves


class TestSwapSubtlety:
    def test_multiset_preserving_swap_detected(self):
        """(s, t) -> (t, s) is a quotient self-loop that changes names:
        missing it would wrongly certify a livelocking protocol."""
        swap = TableProtocol(
            {(0, 1): (1, 0), (1, 0): (0, 1)}, mobile_states=[0, 1]
        )
        verdict = check_naming_global_quotient(swap, [((0, 1), None)])
        assert not verdict.solves
        assert "never" in verdict.reason


class TestScaling:
    """Instances out of reach for the labelled checker."""

    def test_prop13_full_population_p6(self):
        protocol = SymmetricGlobalNamingProtocol(6)
        verdict = check_naming_global_quotient(
            protocol, arbitrary_quotient_initials(protocol, 6)
        )
        assert verdict.solves

    def test_protocol3_full_population_p5(self):
        """N = P = 5 for Protocol 3: unreachable by simulation (the sweep
        cost explodes) and by the labelled checker (3125-fold blow-up);
        the quotient decides it exactly."""
        protocol = GlobalNamingProtocol(5)
        verdict = check_naming_global_quotient(
            protocol,
            arbitrary_quotient_initials(
                protocol, 5, [protocol.initial_leader_state()]
            ),
        )
        assert verdict.solves

    def test_protocol2_not_correct_under_global_quotient_weakness(self):
        """Protocol 2 is a weak-fairness protocol; under global fairness
        it is also correct (globally fair random schedules are weakly fair
        w.p. 1 in simulation), and the quotient checker confirms the
        stronger statement exactly for a small instance."""
        protocol = SelfStabilizingNamingProtocol(2)
        verdict = check_naming_global_quotient(
            protocol, arbitrary_quotient_initials(protocol, 2)
        )
        assert verdict.solves
