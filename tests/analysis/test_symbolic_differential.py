"""Differential tests: symbolic checker vs the explicit labelled ones.

On every registry instance small enough for the explicit graph, the
counts-quotient frontier must agree with labelled exploration: the
quotiented reachable sets are equal, the sink components are identical
(as families of count vectors), and the weak-fairness verdict matches
:func:`repro.analysis.weak_fairness.check_naming_weak` exactly.
"""

import pytest

from repro.analysis import symbolic as S
from repro.analysis.model_checker import (
    check_naming_global,
    sink_components,
)
from repro.analysis.reachability import (
    arbitrary_initial_configurations,
    explore,
    uniform_initial_configurations,
)
from repro.analysis.weak_fairness import check_naming_weak
from repro.core.registry import protocol_for
from repro.core.spec import all_specs
from repro.engine.population import Population
from repro.errors import InfeasibleSpecError

BOUND = 4
N_MOBILE = 3


def small_instances():
    """Every feasible (spec, mode) cell at the differential size."""
    cases = []
    seen = set()
    for spec in all_specs():
        try:
            protocol = protocol_for(spec, BOUND)
        except InfeasibleSpecError:
            continue
        for mode in ("arbitrary", "uniform"):
            key = (protocol.display_name, mode)
            if key in seen:
                continue
            seen.add(key)
            cases.append(
                pytest.param(
                    protocol, mode, id=f"{protocol.display_name}-{mode}"
                )
            )
    return cases


def explicit_graph(protocol, mode):
    population = Population(N_MOBILE, protocol.requires_leader)
    maker = (
        arbitrary_initial_configurations
        if mode == "arbitrary"
        else uniform_initial_configurations
    )
    initial = list(maker(protocol, population))
    return population, initial, explore(protocol, population, initial)


def symbolic_reach(protocol, mode, track_edges=False):
    system = S.CountsSystem(protocol)
    roots = system.root_matrix(N_MOBILE, mode)
    return system, S.reach(system, roots, track_edges=track_edges)


def quotient_rows(system, configs):
    return {bytes(system.encode(c)) for c in configs}


def symbolic_sink_rowsets(rs):
    """Sink SCCs of the reached quotient as frozensets of row bytes."""
    sccs = S.symbolic_sccs(rs)
    comp_of = {}
    for cid, comp in enumerate(sccs):
        for node in comp:
            comp_of[node] = cid
    leaves = {cid for cid in range(len(sccs))}
    for src, dst in zip(rs.edges_src, rs.edges_dst):
        if comp_of[src] != comp_of[dst]:
            leaves.discard(comp_of[src])
    return {
        frozenset(rs.rows[node].tobytes() for node in sccs[cid])
        for cid in leaves
    }


@pytest.mark.parametrize("protocol,mode", small_instances())
class TestDifferential:
    def test_reachable_sets_equal(self, protocol, mode):
        _, _, graph = explicit_graph(protocol, mode)
        system, rs = symbolic_reach(protocol, mode)
        explicit = quotient_rows(system, graph.nodes)
        symbolic = {bytes(row) for row in rs.rows}
        assert explicit == symbolic

    def test_sink_components_identical(self, protocol, mode):
        _, _, graph = explicit_graph(protocol, mode)
        system, rs = symbolic_reach(protocol, mode, track_edges=True)
        explicit_sinks = {
            frozenset(quotient_rows(system, comp))
            for comp in sink_components(graph)
        }
        assert explicit_sinks == symbolic_sink_rowsets(rs)

    def test_global_fairness_verdicts_agree(self, protocol, mode):
        population, initial, _ = explicit_graph(protocol, mode)
        explicit = check_naming_global(protocol, population, initial)
        symbolic = S.check_sinks(protocol, N_MOBILE, mobile_mode=mode)
        assert explicit.solves == symbolic.holds

    def test_weak_fairness_verdicts_agree(self, protocol, mode):
        population, initial, _ = explicit_graph(protocol, mode)
        explicit = check_naming_weak(protocol, population, initial)
        symbolic = S.check_liveness(protocol, N_MOBILE, mobile_mode=mode)
        assert explicit.solves == symbolic.holds
        if not symbolic.holds:
            assert symbolic.replay_validated is True
