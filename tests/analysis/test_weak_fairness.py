"""Tests for the weak-fairness model checker."""

import pytest

from repro.analysis.reachability import arbitrary_initial_configurations
from repro.analysis.weak_fairness import check_naming_weak, failing_components
from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.leader_uniform import LeaderUniformNamingProtocol
from repro.core.selfstab_naming import SelfStabilizingNamingProtocol
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.protocol import TableProtocol
from repro.errors import VerificationError


class TestPositiveVerdicts:
    def test_asymmetric_protocol_solves_weak(self):
        protocol = AsymmetricNamingProtocol(3)
        pop = Population(3)
        verdict = check_naming_weak(
            protocol, pop, arbitrary_initial_configurations(protocol, pop)
        )
        assert verdict.solves

    def test_protocol2_solves_weak_including_leader_garbage(self):
        protocol = SelfStabilizingNamingProtocol(2)
        pop = Population(2, has_leader=True)
        verdict = check_naming_weak(
            protocol, pop, arbitrary_initial_configurations(protocol, pop)
        )
        assert verdict.solves

    def test_prop14_solves_weak_from_designated_start(self):
        protocol = LeaderUniformNamingProtocol(3)
        pop = Population(3, has_leader=True)
        start = Configuration.uniform(
            pop,
            protocol.initial_mobile_state(),
            protocol.initial_leader_state(),
        )
        verdict = check_naming_weak(protocol, pop, [start])
        assert verdict.solves

    def test_already_named_silent_population(self):
        protocol = TableProtocol({}, mobile_states=[0, 1, 2])
        pop = Population(3)
        verdict = check_naming_weak(protocol, pop, [Configuration((0, 1, 2))])
        assert verdict.solves


class TestNegativeVerdicts:
    def test_silent_duplicates_detected(self):
        protocol = TableProtocol({}, mobile_states=[0, 1])
        pop = Population(2)
        verdict = check_naming_weak(protocol, pop, [Configuration((0, 0))])
        assert not verdict.solves
        assert "duplicate names" in verdict.reason

    def test_prop13_protocol_fails_under_weak(self):
        """Global-fairness protocols are not weak-fairness protocols: the
        checker finds the livelock (this is the content of the Table 1
        weak/global distinction)."""
        protocol = SymmetricGlobalNamingProtocol(3)
        pop = Population(3)
        verdict = check_naming_weak(
            protocol, pop, arbitrary_initial_configurations(protocol, pop)
        )
        assert not verdict.solves
        assert "livelock" in verdict.reason

    def test_swap_livelock_detected(self):
        swap = TableProtocol(
            {(0, 1): (1, 0), (1, 0): (0, 1)}, mobile_states=[0, 1]
        )
        pop = Population(2)
        verdict = check_naming_weak(swap, pop, [Configuration((0, 1))])
        assert not verdict.solves
        assert "livelock" in verdict.reason

    def test_counterexample_configuration_reported(self):
        protocol = TableProtocol({}, mobile_states=[0])
        pop = Population(2)
        verdict = check_naming_weak(protocol, pop, [Configuration((0, 0))])
        assert verdict.counterexample == Configuration((0, 0))


class TestNullMeetingSubtlety:
    def test_escapable_bad_state_still_fails_if_nulls_cover(self):
        """A configuration with duplicate names where every pair *can* meet
        null-ly is a counterexample even though progress is possible: the
        weak adversary simply schedules the null orientation forever.

        Rule: (0,0) -> (0,1) only when agent order is (initiator 0 first);
        the reversed orientation is null. Pair {0,1} can thus meet without
        changing anything, and weak fairness is satisfied.
        """
        protocol = TableProtocol(
            {(0, 0): (0, 1)}, mobile_states=[0, 1], symmetric=False
        )
        pop = Population(2)
        verdict = check_naming_weak(protocol, pop, [Configuration((0, 0))])
        # (0,0) meeting IS non-null in both orders ((p,q)=(0,0) either
        # way), so this protocol actually escapes - it must solve.
        assert verdict.solves

    def test_reachable_silent_duplicates_doom_a_protocol(self):
        """A rule that *can* merge distinct names into silent duplicates is
        fatal under weak fairness: the adversary simply fires it once and
        parks there (the orientation (1, 0) stays null, so every pair can
        keep meeting without change)."""
        protocol = TableProtocol(
            {(0, 1): (0, 0)},
            mobile_states=[0, 1],
        )
        pop = Population(2)
        verdict = check_naming_weak(protocol, pop, [Configuration((0, 1))])
        assert not verdict.solves
        assert verdict.counterexample == Configuration((0, 0))

    def test_stalling_with_duplicates_fails(self):
        # Same shape but the stallable configuration has duplicates:
        # (1,1) -> only null meetings in some orientation? (1,1) is the
        # same ordered pair both ways; make it null and make (0,1) the
        # active rule: then (1,1) is silent with duplicates.
        protocol = TableProtocol({(0, 1): (1, 1)}, mobile_states=[0, 1])
        pop = Population(2)
        verdict = check_naming_weak(protocol, pop, [Configuration((1, 1))])
        assert not verdict.solves


class TestDiagnostics:
    def test_failing_components_lists_witnesses(self):
        protocol = TableProtocol({}, mobile_states=[0])
        pop = Population(2)
        witnesses = failing_components(
            protocol, pop, [Configuration((0, 0))]
        )
        assert witnesses == [Configuration((0, 0))]

    def test_raises_without_initial(self):
        protocol = AsymmetricNamingProtocol(2)
        with pytest.raises(VerificationError):
            check_naming_weak(protocol, Population(2), [])
