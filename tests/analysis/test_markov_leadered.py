"""Exact expected times for leader-based protocols (the leadered branch
of the lumped chain)."""

import pytest

from repro.analysis.markov import expected_convergence_time, naming_absorbing
from repro.core.leader_uniform import (
    CounterLeaderState,
    LeaderUniformNamingProtocol,
)
from repro.core.selfstab_naming import SelfStabilizingNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.simulator import Simulator
from repro.schedulers.random_pair import RandomPairScheduler


class TestLeaderUniformExact:
    def test_single_agent_coupon(self):
        """One agent, one leader: every second draw is leader-first; the
        renaming rule fires on either orientation, so E[T] = 1."""
        protocol = LeaderUniformNamingProtocol(2)
        start = ((2,), CounterLeaderState(1))
        times = expected_convergence_time(
            protocol, [start], naming_absorbing(protocol)
        )
        assert times[start] == pytest.approx(1.0)

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_matches_simulation(self, n):
        protocol = LeaderUniformNamingProtocol(n)
        start = ((n,) * n, CounterLeaderState(1))
        exact = expected_convergence_time(
            protocol, [start], naming_absorbing(protocol)
        )[start]

        runs = 250
        total = 0
        population = Population(n, has_leader=True)
        for seed in range(runs):
            simulator = Simulator(
                protocol,
                population,
                RandomPairScheduler(population, seed=seed),
                NamingProblem(),
                check_interval=1,
            )
            result = simulator.run(
                Configuration.uniform(
                    population, n, CounterLeaderState(1)
                )
            )
            total += result.convergence_interaction
        assert total / runs == pytest.approx(exact, rel=0.12)

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_coupon_collector_closed_form(self, n):
        """Prop. 14 at P = N admits a closed form.  With ``u`` unnamed
        agents left, the leader draws one with probability
        ``2u / (A(A-1))`` (``A = n + 1`` agents), and only ``n - 1``
        renamings are needed - the last agent simply keeps the name P.
        Hence ``E[T] = (A(A-1)/2) * (H_n - 1)``; the lumped-chain solve
        must reproduce it exactly."""
        protocol = LeaderUniformNamingProtocol(n)
        start = ((n,) * n, CounterLeaderState(1))
        exact = expected_convergence_time(
            protocol, [start], naming_absorbing(protocol)
        )[start]
        agents = n + 1
        harmonic_tail = sum(1 / u for u in range(2, n + 1))
        closed_form = agents * (agents - 1) / 2 * harmonic_tail
        assert exact == pytest.approx(closed_form)


class TestProtocol2Exact:
    def test_small_selfstab_instance(self):
        """Protocol 2's leadered chain from the well-initialized start is
        solvable exactly at P = N = 2 and agrees with simulation."""
        protocol = SelfStabilizingNamingProtocol(2)
        start = ((0, 0), protocol.initial_leader_state())
        exact = expected_convergence_time(
            protocol, [start], naming_absorbing(protocol),
            max_nodes=50_000,
        )[start]
        assert exact > 0

        runs = 300
        total = 0
        population = Population(2, has_leader=True)
        for seed in range(runs):
            simulator = Simulator(
                protocol,
                population,
                RandomPairScheduler(population, seed=seed),
                NamingProblem(),
                check_interval=1,
            )
            result = simulator.run(
                Configuration.uniform(
                    population, 0, protocol.initial_leader_state()
                )
            )
            total += result.convergence_interaction
        assert total / runs == pytest.approx(exact, rel=0.12)
