"""Tests for runtime invariant monitors riding the observer hook."""

import pytest

from repro.analysis.monitors import (
    CompositeMonitor,
    CountMonitor,
    InvariantViolation,
    PotentialMonitor,
    StateSpaceMonitor,
)
from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.counting import CountingProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import CountingProblem, NamingProblem
from repro.engine.simulator import Simulator
from repro.schedulers.random_pair import RandomPairScheduler


class TestPotentialMonitor:
    def test_clean_run_passes(self):
        bound = 6
        protocol = AsymmetricNamingProtocol(bound)
        pop = Population(6)
        monitor = PotentialMonitor(bound)
        simulator = Simulator(
            protocol, pop, RandomPairScheduler(pop, seed=1), NamingProblem()
        )
        result = simulator.run(
            Configuration.uniform(pop, 0), observer=monitor
        )
        assert result.converged
        assert monitor.observations == result.non_null_interactions

    def test_violation_detected(self):
        monitor = PotentialMonitor(4)
        monitor(0, Configuration((0, 1, 2)))  # potential (1, 3)
        with pytest.raises(InvariantViolation, match="did not decrease"):
            monitor(1, Configuration((0, 0, 2)))  # strictly worse


class TestCountMonitor:
    def test_clean_counting_run_passes(self):
        n, bound = 4, 6
        protocol = CountingProtocol(bound)
        pop = Population(n, has_leader=True)
        monitor = CountMonitor(true_size=n)
        simulator = Simulator(
            protocol,
            pop,
            RandomPairScheduler(pop, seed=2),
            CountingProblem(n),
        )
        initial = Configuration.uniform(
            pop, 1, protocol.initial_leader_state()
        )
        result = simulator.run(initial, observer=monitor)
        assert result.converged
        assert monitor.last == n
        assert monitor.observations > 0

    def test_decrease_detected(self):
        from repro.core.counting import CountingLeaderState

        monitor = CountMonitor(true_size=3)
        monitor(0, Configuration((1, CountingLeaderState(2, 1)), leader_index=1))
        with pytest.raises(InvariantViolation, match="decreased"):
            monitor(
                1,
                Configuration((1, CountingLeaderState(1, 1)), leader_index=1),
            )

    def test_overshoot_detected(self):
        from repro.core.counting import CountingLeaderState

        monitor = CountMonitor(true_size=2)
        with pytest.raises(InvariantViolation, match="overshot"):
            monitor(
                0,
                Configuration((1, CountingLeaderState(3, 1)), leader_index=1),
            )

    def test_requires_a_counting_leader(self):
        monitor = CountMonitor(true_size=2)
        with pytest.raises(InvariantViolation, match="without a count"):
            monitor(0, Configuration((1, 2)))


class TestStateSpaceMonitor:
    def test_clean_run_passes(self):
        protocol = CountingProtocol(4)
        pop = Population(3, has_leader=True)
        monitor = StateSpaceMonitor(
            protocol.mobile_state_space(), protocol.leader_state_space()
        )
        simulator = Simulator(
            protocol,
            pop,
            RandomPairScheduler(pop, seed=3),
            CountingProblem(3),
        )
        initial = Configuration.uniform(
            pop, 2, protocol.initial_leader_state()
        )
        result = simulator.run(initial, observer=monitor)
        assert result.converged
        assert monitor.observations > 0

    def test_escape_detected(self):
        monitor = StateSpaceMonitor(frozenset({0, 1}), frozenset())
        with pytest.raises(InvariantViolation, match="escaped"):
            monitor(0, Configuration((0, 7)))


class TestCompositeMonitor:
    def test_fans_out(self):
        bound = 4
        a = PotentialMonitor(bound)
        b = StateSpaceMonitor(frozenset(range(bound)), frozenset())
        composite = CompositeMonitor([a, b])
        composite(0, Configuration((0, 1, 2)))
        assert a.observations == 1
        assert b.observations == 1
