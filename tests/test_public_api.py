"""The public API surface: everything advertised in ``__all__`` must
exist, and the README quickstart must run verbatim."""

import importlib

import pytest

import repro
import repro.analysis
import repro.core
import repro.engine
import repro.experiments
import repro.faults
import repro.schedulers

PACKAGES = [
    repro,
    repro.analysis,
    repro.core,
    repro.engine,
    repro.experiments,
    repro.faults,
    repro.schedulers,
]


class TestExports:
    @pytest.mark.parametrize(
        "package", PACKAGES, ids=lambda p: p.__name__
    )
    def test_all_names_resolve(self, package):
        for name in package.__all__:
            assert hasattr(package, name), f"{package.__name__}.{name}"

    @pytest.mark.parametrize(
        "package", PACKAGES, ids=lambda p: p.__name__
    )
    def test_all_is_sorted_and_unique(self, package):
        names = [n for n in package.__all__ if n != "__version__"]
        assert len(set(names)) == len(names)

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_submodules_importable(self):
        for module in (
            "repro.cli",
            "repro.errors",
            "repro.analysis.counterexample",
            "repro.analysis.quotient",
            "repro.core.transformer",
            "repro.core.leader_election",
            "repro.engine.ensemble",
            "repro.schedulers.graph_restricted",
            "repro.experiments.time_study",
            "repro.experiments.scaling",
        ):
            importlib.import_module(module)


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        from repro import (
            AsymmetricNamingProtocol,
            Configuration,
            NamingProblem,
            Population,
            RandomPairScheduler,
            run_protocol,
        )

        protocol = AsymmetricNamingProtocol(bound=8)
        population = Population(n_mobile=8)
        scheduler = RandomPairScheduler(population, seed=1)
        start = Configuration.uniform(population, 0)
        result = run_protocol(
            protocol, population, scheduler, start, NamingProblem()
        )
        assert result.converged
        assert len(set(result.names())) == 8
