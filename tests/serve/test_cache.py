"""Tests for the content-addressed artifact cache."""

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.serve.cache import ArtifactCache

_RACE_KEY = "ab" * 32
_RACE_ROUNDS = 40


def _race_writer(args):
    """One racing process: hammer the same fingerprint with its payload."""
    root, tag = args
    cache = ArtifactCache(root)
    # Big enough that a non-atomic write would be observably torn.
    payload = {"tag": tag, "blob": list(range(20_000))}
    for _ in range(_RACE_ROUNDS):
        cache.put("results", _RACE_KEY, payload)
    return tag


def _race_reader(root):
    """Poll the racing key; every observation must be a whole artifact."""
    seen = set()
    for _ in range(_RACE_ROUNDS * 5):
        # A fresh instance per poll, so every read goes to disk rather
        # than being served from the promoted memory copy.
        value = ArtifactCache(root).get("results", _RACE_KEY)
        if value is None:
            continue  # not yet written - a miss, never an error
        assert value["blob"] == list(range(20_000)), "torn pickle read"
        seen.add(value["tag"])
    return seen


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("tables", "a" * 64, {"x": 1})
        assert cache.get("tables", "a" * 64) == {"x": 1}
        assert cache.stats.memory_hits == 1

    def test_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.get("tables", "b" * 64) is None
        assert cache.stats.misses == 1

    def test_contains(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert not cache.contains("tables", "c" * 64)
        cache.put("tables", "c" * 64, 1)
        assert cache.contains("tables", "c" * 64)

    def test_kinds_are_namespaces(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("tables", "d" * 64, "table")
        cache.put("results", "d" * 64, "result")
        assert cache.get("tables", "d" * 64) == "table"
        assert cache.get("results", "d" * 64) == "result"


class TestDiskLayer:
    def test_shared_root_across_instances(self, tmp_path):
        # The worker-process pattern: another instance on the same root
        # sees what the first one published, via a disk hit.
        writer = ArtifactCache(tmp_path)
        writer.put("tables", "e" * 64, [1, 2, 3])
        reader = ArtifactCache(tmp_path)
        assert reader.get("tables", "e" * 64) == [1, 2, 3]
        assert reader.stats.disk_hits == 1

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        writer = ArtifactCache(tmp_path)
        writer.put("tables", "f" * 64, 42)
        reader = ArtifactCache(tmp_path)
        reader.get("tables", "f" * 64)
        reader.get("tables", "f" * 64)
        assert reader.stats.disk_hits == 1
        assert reader.stats.memory_hits == 1

    def test_corrupt_artifact_is_a_miss_and_removed(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("tables", "a1" + "0" * 62, "good")
        reader = ArtifactCache(tmp_path)
        [path] = list(tmp_path.rglob("*.pkl"))
        path.write_bytes(b"not a pickle")
        assert reader.get("tables", "a1" + "0" * 62) is None
        assert not path.exists()

    def test_invalid_components_rejected(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        with pytest.raises(ValueError):
            cache.put("../escape", "a" * 64, 1)
        with pytest.raises(ValueError):
            cache.get("tables", "../../etc/passwd")


class TestEviction:
    def test_memory_lru_respects_cap(self, tmp_path):
        cache = ArtifactCache(tmp_path, memory_items=2)
        for i in range(4):
            cache.put("tables", f"{i:064d}", i)
        assert cache.stats.memory_evictions == 2
        # Evicted entries are still served from disk.
        assert cache.get("tables", f"{0:064d}") == 0
        assert cache.stats.disk_hits == 1

    def test_memory_lru_keeps_recently_used(self, tmp_path):
        cache = ArtifactCache(tmp_path, memory_items=2)
        cache.put("tables", "a" * 64, "a")
        cache.put("tables", "b" * 64, "b")
        cache.get("tables", "a" * 64)  # refresh a
        cache.put("tables", "c" * 64, "c")  # evicts b, not a
        cache.get("tables", "a" * 64)
        assert cache.stats.memory_hits == 2

    def test_disk_budget_evicts_oldest(self, tmp_path):
        import os
        import time

        # Budget fits one ~1 KiB artifact but not two.
        cache = ArtifactCache(tmp_path, disk_bytes=1500)
        cache.put("tables", "a" * 64, b"x" * 1000)
        # Backdate the first artifact so mtime ordering is deterministic.
        [first] = list(tmp_path.rglob("*.pkl"))
        old = time.time() - 60
        os.utime(first, (old, old))
        cache.put("tables", "b" * 64, b"y" * 1000)
        assert cache.stats.disk_evictions >= 1
        assert not first.exists()
        assert cache.contains("tables", "b" * 64)

    def test_unbounded_disk_keeps_everything(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for i in range(8):
            cache.put("tables", f"{i:064d}", i)
        assert len(list(tmp_path.rglob("*.pkl"))) == 8


class TestConcurrentWriters:
    def test_racing_processes_never_tear_or_fail(self, tmp_path):
        """Two processes hammering one fingerprint: both succeed, the
        surviving artifact is one writer's whole payload (atomic
        last-wins via ``os.replace``), and a concurrent reader never
        observes a torn pickle - only misses or complete values."""
        root = str(tmp_path)
        with ProcessPoolExecutor(max_workers=3) as pool:
            reader = pool.submit(_race_reader, root)
            writers = [
                pool.submit(_race_writer, (root, tag))
                for tag in ("left", "right")
            ]
            assert sorted(w.result(timeout=300) for w in writers) == [
                "left",
                "right",
            ]
            seen = reader.result(timeout=300)
        assert seen <= {"left", "right"}
        # Last-wins: exactly one whole artifact remains on disk, and it
        # belongs to one of the racers.
        final = ArtifactCache(root).get("results", _RACE_KEY)
        assert final["tag"] in {"left", "right"}
        assert final["blob"] == list(range(20_000))
        assert len(list(tmp_path.rglob("*.pkl"))) == 1
        # No temp-file debris survives the race.
        assert not list(tmp_path.rglob("*.tmp"))
