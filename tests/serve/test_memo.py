"""Result memoization: replays must be bit-identical to fresh runs."""

import pytest

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.ensemble import run_ensemble
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.errors import ConvergenceError
from repro.schedulers.random_pair import RandomPairScheduler
from repro.serve.cache import ArtifactCache
from repro.serve.memo import run_memoized
from repro.serve.spec import JobSpec


def _scheduler_factory(population, seed):
    return RandomPairScheduler(population, seed=seed)


def _initial_factory(population, seed):
    return Configuration.uniform(population, 0)


def make_spec(**overrides):
    kwargs = dict(
        protocol=AsymmetricNamingProtocol(4),
        population=Population(30),
        scheduler_factory=_scheduler_factory,
        initial_factory=_initial_factory,
        problem=NamingProblem(),
        seeds=(0, 1, 2, 3),
        max_interactions=100_000,
        backend="batch",
    )
    kwargs.update(overrides)
    return JobSpec(**kwargs)


def fresh_ensemble(spec):
    return run_ensemble(
        spec.protocol,
        spec.population,
        spec.scheduler_factory,
        spec.initial_factory,
        spec.problem,
        list(spec.seeds),
        max_interactions=spec.max_interactions,
        backend=spec.backend,
        sanitize=spec.sanitize,
    )


class TestBitIdenticalReplay:
    @pytest.mark.parametrize("backend", ["batch", "fast", "counts"])
    @pytest.mark.parametrize("sanitize", [False, True])
    def test_replay_matches_fresh_run(self, tmp_path, backend, sanitize):
        spec = make_spec(backend=backend, sanitize=sanitize)
        reference = fresh_ensemble(spec)
        cache = ArtifactCache(tmp_path)
        first, hit1 = run_memoized(spec, cache)
        second, hit2 = run_memoized(spec, cache)
        assert (hit1, hit2) == (False, True)
        for ensemble in (first, second):
            assert ensemble.results == reference.results
            assert ensemble.seeds == reference.seeds

    def test_replay_shared_across_cache_instances(self, tmp_path):
        spec = make_spec()
        _, miss = run_memoized(spec, ArtifactCache(tmp_path))
        replay, hit = run_memoized(spec, ArtifactCache(tmp_path))
        assert (miss, hit) == (False, True)
        assert replay.results == fresh_ensemble(spec).results

    def test_equal_protocol_instances_share_results(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        _, miss = run_memoized(make_spec(), cache)
        _, hit = run_memoized(make_spec(), cache)
        assert (miss, hit) == (False, True)

    def test_different_seeds_do_not_collide(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        run_memoized(make_spec(), cache)
        other, hit = run_memoized(make_spec(seeds=(9, 10)), cache)
        assert not hit
        assert other.seeds == [9, 10]


class TestRequireConvergence:
    def test_enforced_on_replay(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        # A 1-interaction budget cannot converge; the miss populates the
        # cache (require_convergence is enforced at assembly, so the
        # failure is raised on both the miss and the replay).
        failing = make_spec(max_interactions=1, require_convergence=True)
        with pytest.raises(ConvergenceError):
            run_memoized(failing, cache)
        with pytest.raises(ConvergenceError):
            run_memoized(failing, cache)

    def test_stored_results_reusable_without_convergence(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        failing = make_spec(max_interactions=1, require_convergence=True)
        with pytest.raises(ConvergenceError):
            run_memoized(failing, cache)
        # Same job without the convergence requirement replays the
        # stored results instead of re-running.
        relaxed = make_spec(max_interactions=1)
        ensemble, hit = run_memoized(relaxed, cache)
        assert hit
        assert ensemble.convergence_rate == 0.0
