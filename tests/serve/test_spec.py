"""Tests for canonical spec hashing (fingerprints, job keys, tokens)."""

import pytest

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.protocol import PopulationProtocol
from repro.schedulers.random_pair import RandomPairScheduler
from repro.serve.spec import (
    JobSpec,
    callable_token,
    job_key,
    protocol_fingerprint,
    resolve_backend,
)


def _scheduler_factory(population, seed):
    return RandomPairScheduler(population, seed=seed)


def _initial_factory(population, seed):
    return Configuration.uniform(population, 0)


def _other_initial_factory(population, seed):
    return Configuration.uniform(population, 1)


def make_spec(**overrides):
    kwargs = dict(
        protocol=AsymmetricNamingProtocol(5),
        population=Population(40),
        scheduler_factory=_scheduler_factory,
        initial_factory=_initial_factory,
        problem=NamingProblem(),
        seeds=(0, 1, 2),
        backend="batch",
    )
    kwargs.update(overrides)
    return JobSpec(**kwargs)


class Unfingerprintable(PopulationProtocol):
    """A protocol whose state space cannot be enumerated."""

    display_name = "unfingerprintable"

    def transition(self, p, q):
        return p, q

    def mobile_state_space(self):
        raise NotImplementedError("no enumerable state space")


class TestProtocolFingerprint:
    def test_equal_instances_share_fingerprint(self):
        fp1 = protocol_fingerprint(AsymmetricNamingProtocol(5))
        fp2 = protocol_fingerprint(AsymmetricNamingProtocol(5))
        assert fp1 is not None
        assert fp1 == fp2

    def test_different_protocols_differ(self):
        fp1 = protocol_fingerprint(AsymmetricNamingProtocol(4))
        fp2 = protocol_fingerprint(AsymmetricNamingProtocol(5))
        assert fp1 != fp2

    def test_unfingerprintable_protocol_is_none(self):
        assert protocol_fingerprint(Unfingerprintable()) is None


class TestCallableToken:
    def test_function_token_is_dotted_path(self):
        token = callable_token(_scheduler_factory)
        assert token.endswith(":_scheduler_factory")

    def test_none_token(self):
        assert callable_token(None) == "none"

    def test_instance_with_repr_includes_repr(self):
        token = callable_token(NamingProblem())
        assert token.split("|", 1)[0].endswith(":NamingProblem")

    def test_tokens_are_process_independent(self):
        # Two equal instances must token identically (no id()/address).
        assert callable_token(NamingProblem()) == callable_token(
            NamingProblem()
        )


class TestResolveBackend:
    def test_explicit_backend_passes_through(self):
        assert resolve_backend("fast", Population(10)) == "fast"

    def test_auto_matches_run_ensemble_thresholds(self):
        assert resolve_backend("auto", Population(10)) == "batch"
        assert resolve_backend("auto", Population(10_000)) == "bleap"
        assert resolve_backend("auto", Population(1_000_000)) == "fluid"


class TestJobKey:
    def test_equal_specs_share_key(self):
        assert job_key(make_spec()) == job_key(make_spec())

    def test_seeds_enter_the_key(self):
        assert job_key(make_spec()) != job_key(make_spec(seeds=(3, 4, 5)))

    def test_budget_enters_the_key(self):
        assert job_key(make_spec()) != job_key(
            make_spec(max_interactions=999)
        )

    def test_backend_enters_the_key(self):
        assert job_key(make_spec(backend="batch")) != job_key(
            make_spec(backend="fast")
        )

    def test_sanitize_enters_the_key(self):
        assert job_key(make_spec()) != job_key(make_spec(sanitize=True))

    def test_factories_enter_the_key(self):
        assert job_key(make_spec()) != job_key(
            make_spec(initial_factory=_other_initial_factory)
        )

    def test_require_convergence_does_not_enter_the_key(self):
        # Enforced at assembly time, so cached results stay sharable.
        assert job_key(make_spec()) == job_key(
            make_spec(require_convergence=True)
        )

    def test_unfingerprintable_protocol_has_no_key(self):
        assert job_key(make_spec(protocol=Unfingerprintable())) is None

    def test_seeds_normalized_to_tuple(self):
        spec = make_spec(seeds=range(3))
        assert spec.seeds == (0, 1, 2)
        assert job_key(spec) == job_key(make_spec(seeds=(0, 1, 2)))
