"""The serve pool: bit-identity, backpressure, crash recovery."""

import os
import time

import pytest

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.ensemble import run_ensemble
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.errors import ServeError, ServeSaturatedError, WorkerCrashError
from repro.schedulers.random_pair import RandomPairScheduler
from repro.serve.pool import ServePool
from repro.serve.spec import JobSpec


def _scheduler_factory(population, seed):
    return RandomPairScheduler(population, seed=seed)


def _initial_factory(population, seed):
    return Configuration.uniform(population, 0)


def _slow_initial_factory(population, seed):
    time.sleep(0.25)
    return Configuration.uniform(population, 0)


def _crashing_initial_factory(population, seed):
    os._exit(13)


def make_spec(**overrides):
    kwargs = dict(
        protocol=AsymmetricNamingProtocol(4),
        population=Population(30),
        scheduler_factory=_scheduler_factory,
        initial_factory=_initial_factory,
        problem=NamingProblem(),
        seeds=(0, 1, 2, 3),
        max_interactions=100_000,
        backend="batch",
    )
    kwargs.update(overrides)
    return JobSpec(**kwargs)


def fresh_ensemble(spec):
    return run_ensemble(
        spec.protocol,
        spec.population,
        spec.scheduler_factory,
        spec.initial_factory,
        spec.problem,
        list(spec.seeds),
        max_interactions=spec.max_interactions,
        backend=spec.backend,
        sanitize=spec.sanitize,
    )


@pytest.fixture(scope="module")
def pool():
    with ServePool(max_workers=2) as shared:
        shared.warm()
        yield shared


class TestBitIdentity:
    @pytest.mark.parametrize("backend", ["batch", "fast"])
    @pytest.mark.parametrize("sanitize", [False, True])
    def test_pool_matches_serial_run(self, pool, backend, sanitize):
        spec = make_spec(backend=backend, sanitize=sanitize)
        reference = fresh_ensemble(spec)
        served = pool.submit(spec).result(timeout=120)
        assert served.results == reference.results
        assert served.seeds == reference.seeds

    def test_memo_replay_through_pool(self, pool):
        spec = make_spec(seeds=(40, 41, 42))
        first = pool.submit(spec)
        ensemble = first.result(timeout=120)
        second = pool.submit(spec)
        assert not first.from_memo
        assert second.from_memo
        replay = second.result()
        assert replay.results == ensemble.results
        assert replay.seeds == ensemble.seeds

    def test_progress_reaches_completion(self, pool):
        spec = make_spec(seeds=(50, 51, 52, 53, 54))
        handle = pool.submit(spec)
        snapshots = list(handle.stream())
        handle.result(timeout=120)
        final = handle.progress()
        assert snapshots[-1].done
        assert final.seeds_done == 5
        assert final.fraction == 1.0


class TestBackpressure:
    def test_nonblocking_submit_raises_when_saturated(self):
        with ServePool(max_workers=1, max_pending=1) as pool:
            pool.warm()
            slow = make_spec(
                initial_factory=_slow_initial_factory, seeds=(0, 1)
            )
            handle = pool.submit(slow)
            with pytest.raises(ServeSaturatedError) as excinfo:
                pool.submit(make_spec(seeds=(7, 8)), block=False)
            assert excinfo.value.pending == 1
            assert excinfo.value.max_pending == 1
            with pytest.raises(ServeSaturatedError):
                pool.submit(make_spec(seeds=(7, 8)), timeout=0.01)
            handle.result(timeout=120)
            # A finished job frees its slot.
            follow_up = pool.submit(make_spec(seeds=(7, 8)), block=False)
            follow_up.result(timeout=120)

    def test_blocking_submit_waits_for_a_slot(self):
        with ServePool(max_workers=1, max_pending=1) as pool:
            pool.warm()
            slow = make_spec(
                initial_factory=_slow_initial_factory, seeds=(0, 1)
            )
            first = pool.submit(slow)
            second = pool.submit(make_spec(seeds=(9, 10)), timeout=120)
            first.result(timeout=120)
            second.result(timeout=120)
            assert pool.pending_jobs == 0


class TestCrashRecovery:
    def test_worker_crash_raises_structured_error(self):
        with ServePool(max_workers=1) as pool:
            pool.warm()
            doomed = make_spec(
                initial_factory=_crashing_initial_factory, seeds=(0, 1)
            )
            handle = pool.submit(doomed)
            with pytest.raises(WorkerCrashError) as excinfo:
                handle.result(timeout=120)
            assert excinfo.value.job_id == handle.job_id
            assert excinfo.value.seeds == (0, 1)
            assert excinfo.value.reason
            assert pool.worker_crashes >= 1
            # The pool rebuilds its executor and keeps serving.
            spec = make_spec(seeds=(60, 61))
            served = pool.submit(spec).result(timeout=120)
            assert served.results == fresh_ensemble(spec).results


class TestZeroCopyTransport:
    def test_lockstep_job_takes_the_shm_path(self, pool):
        from repro.engine.parallel import shm_available

        if not shm_available()[0]:
            pytest.skip("POSIX shared memory unavailable")
        spec = make_spec(seeds=(90, 91, 92))
        handle = pool.submit(spec)
        assert handle._shm is not None
        lease = handle._shm[0]
        served = handle.result(timeout=120)
        # Results carry the transport provenance and are still
        # bit-identical to a fresh serial run (stats never compare).
        stats = served.results[0].stats
        assert stats.shards >= 1
        assert stats.shm_bytes > 0
        assert served.results == fresh_ensemble(spec).results
        # The blocks are torn down as soon as the job is assembled.
        assert lease.released
        assert lease not in pool._leases

    def test_non_lockstep_backend_skips_shm(self, pool):
        handle = pool.submit(make_spec(backend="fast", seeds=(93, 94)))
        assert handle._shm is None
        handle.result(timeout=120)

    def test_unread_job_after_shutdown_raises(self):
        from repro.engine.parallel import shm_available

        if not shm_available()[0]:
            pytest.skip("POSIX shared memory unavailable")
        pool = ServePool(max_workers=1)
        pool.warm()
        handle = pool.submit(make_spec(seeds=(95, 96)))
        while not handle.progress().done:
            time.sleep(0.01)
        pool.shutdown()
        with pytest.raises(ServeError, match="released"):
            handle.result(timeout=120)

    def test_shm_unavailable_warns_once_and_serves_pickled(
        self, monkeypatch
    ):
        from repro.engine import parallel
        from repro.errors import BackendFallbackWarning

        monkeypatch.setattr(
            parallel, "_SHM_PROBE", (False, "forced by test")
        )
        with ServePool(max_workers=1) as pool:
            pool.warm()
            spec = make_spec(seeds=(97, 98))
            with pytest.warns(BackendFallbackWarning, match="forced by test"):
                handle = pool.submit(spec)
            assert handle._shm is None
            served = handle.result(timeout=120)
            assert served.results == fresh_ensemble(spec).results
            # The warning fires once per pool, not once per job.
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("error")
                second = pool.submit(make_spec(seeds=(99,)))
            second.result(timeout=120)


class TestLifecycle:
    def test_shutdown_rejects_new_jobs(self):
        pool = ServePool(max_workers=1)
        pool.shutdown()
        with pytest.raises(ServeError):
            pool.submit(make_spec())

    def test_shutdown_is_idempotent(self):
        pool = ServePool(max_workers=1)
        pool.warm()
        pool.submit(make_spec(seeds=(72,))).result(timeout=120)
        pool.shutdown()
        pool.shutdown()  # second call is a no-op, not an error
        pool.shutdown(wait=False)

    def test_shutdown_after_context_exit_is_a_noop(self):
        with ServePool(max_workers=1) as pool:
            pool.submit(make_spec(seeds=(73,))).result(timeout=120)
        pool.shutdown()

    def test_del_shuts_down_silently(self):
        # __del__ may run at interpreter teardown with modules half
        # gone; it must never raise, and must release pool resources.
        pool = ServePool(max_workers=1)
        root = pool.cache.root
        pool.__del__()
        assert not root.exists()
        pool.__del__()  # and it is as idempotent as shutdown()

    def test_owned_cache_dir_removed_on_shutdown(self):
        pool = ServePool(max_workers=1)
        root = pool.cache.root
        pool.submit(make_spec(seeds=(70,))).result(timeout=120)
        assert root.exists()
        pool.shutdown()
        assert not root.exists()

    def test_provided_cache_dir_survives_shutdown(self, tmp_path):
        with ServePool(max_workers=1, cache_dir=tmp_path) as pool:
            pool.submit(make_spec(seeds=(71,))).result(timeout=120)
        assert tmp_path.exists()
        assert list(tmp_path.rglob("*.pkl"))

    def test_stats_counters(self, tmp_path):
        with ServePool(max_workers=1, cache_dir=tmp_path) as pool:
            spec = make_spec(seeds=(80, 81))
            pool.submit(spec).result(timeout=120)
            pool.submit(spec).result()
            stats = pool.stats()
        assert stats["jobs_submitted"] == 2
        assert stats["memo_hits"] == 1
        assert stats["pending_jobs"] == 0

    def test_lint_served_from_cache(self, tmp_path):
        with ServePool(max_workers=1, cache_dir=tmp_path) as pool:
            report = pool.lint(AsymmetricNamingProtocol(5), bound=5)
            again = pool.lint(AsymmetricNamingProtocol(5), bound=5)
        assert report.rules_run == again.rules_run
        assert len(report.diagnostics) == len(again.diagnostics)
        # The second call was served from the content-addressed cache.
        assert pool.cache.stats.hits >= 1
