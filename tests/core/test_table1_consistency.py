"""Cross-cutting consistency of the Table 1 oracle, the registry and the
protocols, over a sweep of bounds."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.registry import optimal_states, protocol_for
from repro.core.spec import (
    Fairness,
    LeaderKind,
    MobileInit,
    Symmetry,
    all_specs,
    table1_cell,
)
from repro.engine.protocol import verify_protocol

FEASIBLE = [s for s in all_specs() if table1_cell(s).feasible]


class TestStateCountSweep:
    @pytest.mark.parametrize("bound", [2, 3, 5, 8, 12, 20])
    def test_registry_matches_oracle_for_every_bound(self, bound):
        for spec in FEASIBLE:
            protocol = protocol_for(spec, bound)
            assert protocol.num_mobile_states == optimal_states(spec, bound)

    @given(st.integers(min_value=2, max_value=40))
    def test_exact_space_is_p_or_p_plus_one(self, bound):
        for spec in FEASIBLE:
            states = optimal_states(spec, bound)
            assert states in (bound, bound + 1)

    @given(st.integers(min_value=2, max_value=16))
    def test_symmetric_weak_needs_extra_state_unless_fully_initialized(
        self, bound
    ):
        """The paper's punchline distilled: under symmetric rules, one
        extra state is the price of either weak fairness or missing
        initialization - never of both being absent."""
        for spec in FEASIBLE:
            if spec.symmetry is Symmetry.ASYMMETRIC:
                continue
            states = optimal_states(spec, bound)
            fully_initialized = spec.leader is LeaderKind.INITIALIZED and (
                spec.mobile_init is MobileInit.UNIFORM
                or spec.fairness is Fairness.GLOBAL
            )
            if fully_initialized:
                assert states == bound
            else:
                assert states == bound + 1


class TestProtocolsWellFormedAcrossBounds:
    @pytest.mark.parametrize("bound", [2, 4, 6])
    def test_verify_every_registry_protocol(self, bound):
        for spec in FEASIBLE:
            verify_protocol(protocol_for(spec, bound))

    def test_registry_protocols_are_fresh_instances(self):
        spec = FEASIBLE[0]
        assert protocol_for(spec, 4) is not protocol_for(spec, 4)
