"""Tests for naming-based leader election (the [19] reduction)."""

import pytest

from repro.analysis.weak_fairness import check_naming_weak
from repro.analysis.reachability import arbitrary_initial_configurations
from repro.core.leader_election import (
    LEADER_NAME,
    LeaderElectionProblem,
    NamingLeaderElectionProtocol,
    elected_agents,
)
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.simulator import Simulator
from repro.errors import ProtocolError
from repro.schedulers.random_pair import RandomPairScheduler
from repro.schedulers.round_robin import RoundRobinScheduler
from tests.conftest import random_configuration


class TestConstruction:
    def test_uses_exactly_n_states(self):
        """[19]'s lower bound: self-stabilizing leader election needs N
        states; the reduction matches it."""
        assert NamingLeaderElectionProtocol(7).num_mobile_states == 7

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ProtocolError):
            NamingLeaderElectionProtocol(0)

    def test_election_predicate(self):
        assert NamingLeaderElectionProtocol.is_elected(LEADER_NAME)
        assert not NamingLeaderElectionProtocol.is_elected(3)


class TestElection:
    @pytest.mark.parametrize("n", [1, 2, 4, 7])
    def test_exactly_one_leader_elected(self, n, rng):
        protocol = NamingLeaderElectionProtocol(n)
        pop = Population(n)
        for trial in range(5):
            initial = random_configuration(protocol, pop, rng)
            if n == 1:
                result_config = initial
            else:
                simulator = Simulator(
                    protocol,
                    pop,
                    RandomPairScheduler(pop, seed=trial),
                    LeaderElectionProblem(),
                )
                result = simulator.run(initial, max_interactions=1_000_000)
                assert result.converged
                result_config = result.final_configuration
            assert len(elected_agents(pop, result_config)) == 1

    def test_self_stabilizing_from_all_leaders(self):
        """Worst start: every agent believes it is the leader."""
        n = 6
        protocol = NamingLeaderElectionProtocol(n)
        pop = Population(n)
        simulator = Simulator(
            protocol,
            pop,
            RoundRobinScheduler(pop),
            LeaderElectionProblem(),
        )
        result = simulator.run(
            Configuration.uniform(pop, LEADER_NAME),
            max_interactions=500_000,
        )
        assert result.converged
        assert len(elected_agents(pop, result.final_configuration)) == 1

    def test_election_stable_once_converged(self):
        n = 5
        protocol = NamingLeaderElectionProtocol(n)
        pop = Population(n)
        problem = LeaderElectionProblem()
        config = Configuration(tuple(range(n)))
        assert problem.is_solved(protocol, config)


class TestExactVerification:
    @pytest.mark.parametrize("n", [2, 3])
    def test_names_all_distinct_under_weak_fairness(self, n):
        """The underlying naming (hence the election) is exact-checked."""
        protocol = NamingLeaderElectionProtocol(n)
        pop = Population(n)
        verdict = check_naming_weak(
            protocol, pop, arbitrary_initial_configurations(protocol, pop)
        )
        assert verdict.solves

    def test_silence_implies_unique_leader(self):
        """With P = N, any silent configuration is a permutation of
        {0, ..., N-1}: exactly one agent holds the leader name."""
        from itertools import product

        n = 3
        protocol = NamingLeaderElectionProtocol(n)
        problem = LeaderElectionProblem()
        for states in product(range(n), repeat=n):
            config = Configuration(states)
            silent = all(
                protocol.is_null(p, q)
                for p in states
                for q in states
                if states.count(p) >= (2 if p == q else 1)
            )
            if silent and len(set(states)) == n:
                assert problem.is_satisfied(config)
