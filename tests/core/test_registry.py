"""Tests for the spec-to-protocol registry."""

import pytest

from repro.core.adapters import WithIdleLeader
from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.global_naming import GlobalNamingProtocol
from repro.core.leader_uniform import LeaderUniformNamingProtocol
from repro.core.registry import optimal_states, protocol_for
from repro.core.selfstab_naming import SelfStabilizingNamingProtocol
from repro.core.spec import (
    Fairness,
    LeaderKind,
    MobileInit,
    ModelSpec,
    Symmetry,
    all_specs,
    table1_cell,
)
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.protocol import verify_protocol
from repro.errors import InfeasibleSpecError


def spec(fairness, symmetry, leader, init=MobileInit.ARBITRARY):
    return ModelSpec(fairness, symmetry, leader, init)


class TestInfeasible:
    def test_raises_with_proposition(self):
        bad = spec(Fairness.WEAK, Symmetry.SYMMETRIC, LeaderKind.NONE)
        with pytest.raises(InfeasibleSpecError) as excinfo:
            protocol_for(bad, 5)
        assert excinfo.value.proposition == "Proposition 1"

    def test_optimal_states_raises_too(self):
        bad = spec(Fairness.WEAK, Symmetry.SYMMETRIC, LeaderKind.NONE)
        with pytest.raises(InfeasibleSpecError):
            optimal_states(bad, 5)


class TestSelection:
    def test_asymmetric_cells_use_prop12(self):
        protocol = protocol_for(
            spec(Fairness.WEAK, Symmetry.ASYMMETRIC, LeaderKind.NONE), 5
        )
        assert isinstance(protocol, AsymmetricNamingProtocol)

    def test_asymmetric_with_leader_wraps_idle(self):
        protocol = protocol_for(
            spec(Fairness.WEAK, Symmetry.ASYMMETRIC, LeaderKind.INITIALIZED),
            5,
        )
        assert isinstance(protocol, WithIdleLeader)
        assert isinstance(protocol.inner, AsymmetricNamingProtocol)

    def test_symmetric_global_leaderless_uses_prop13(self):
        protocol = protocol_for(
            spec(Fairness.GLOBAL, Symmetry.SYMMETRIC, LeaderKind.NONE), 5
        )
        assert isinstance(protocol, SymmetricGlobalNamingProtocol)

    def test_symmetric_global_noninit_leader_idles_it(self):
        protocol = protocol_for(
            spec(
                Fairness.GLOBAL,
                Symmetry.SYMMETRIC,
                LeaderKind.NON_INITIALIZED,
            ),
            5,
        )
        assert isinstance(protocol, WithIdleLeader)
        assert isinstance(protocol.inner, SymmetricGlobalNamingProtocol)

    def test_weak_noninit_leader_uses_protocol2(self):
        protocol = protocol_for(
            spec(
                Fairness.WEAK, Symmetry.SYMMETRIC, LeaderKind.NON_INITIALIZED
            ),
            5,
        )
        assert isinstance(protocol, SelfStabilizingNamingProtocol)

    def test_weak_init_leader_uniform_uses_prop14(self):
        protocol = protocol_for(
            spec(
                Fairness.WEAK,
                Symmetry.SYMMETRIC,
                LeaderKind.INITIALIZED,
                MobileInit.UNIFORM,
            ),
            5,
        )
        assert isinstance(protocol, LeaderUniformNamingProtocol)

    def test_weak_init_leader_arbitrary_uses_protocol2(self):
        protocol = protocol_for(
            spec(Fairness.WEAK, Symmetry.SYMMETRIC, LeaderKind.INITIALIZED),
            5,
        )
        assert isinstance(protocol, SelfStabilizingNamingProtocol)

    def test_global_init_leader_uses_protocol3(self):
        protocol = protocol_for(
            spec(Fairness.GLOBAL, Symmetry.SYMMETRIC, LeaderKind.INITIALIZED),
            5,
        )
        assert isinstance(protocol, GlobalNamingProtocol)


class TestConsistencyWithOracle:
    @pytest.mark.parametrize(
        "model_spec",
        [s for s in all_specs() if table1_cell(s).feasible],
        ids=lambda s: s.describe(),
    )
    def test_registry_matches_paper_state_counts(self, model_spec):
        bound = 4
        protocol = protocol_for(model_spec, bound)
        assert protocol.num_mobile_states == optimal_states(model_spec, bound)

    @pytest.mark.parametrize(
        "model_spec",
        [s for s in all_specs() if table1_cell(s).feasible],
        ids=lambda s: s.describe(),
    )
    def test_registry_protocols_well_formed(self, model_spec):
        verify_protocol(protocol_for(model_spec, 3))

    @pytest.mark.parametrize(
        "model_spec",
        [s for s in all_specs() if table1_cell(s).feasible],
        ids=lambda s: s.describe(),
    )
    def test_leader_presence_matches_spec(self, model_spec):
        protocol = protocol_for(model_spec, 3)
        expects_leader = model_spec.leader is not LeaderKind.NONE
        assert protocol.requires_leader == expects_leader

    @pytest.mark.parametrize(
        "model_spec",
        [
            s
            for s in all_specs()
            if table1_cell(s).feasible
            and s.symmetry is Symmetry.SYMMETRIC
        ],
        ids=lambda s: s.describe(),
    )
    def test_symmetric_cells_get_symmetric_protocols(self, model_spec):
        assert protocol_for(model_spec, 3).symmetric
