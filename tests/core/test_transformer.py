"""Tests for the asymmetric-to-symmetric transformer (footnote 5, [17])."""

import pytest

from repro.analysis.model_checker import check_naming_global
from repro.analysis.quotient import (
    arbitrary_quotient_initials,
    check_naming_global_quotient,
)
from repro.analysis.reachability import arbitrary_initial_configurations
from repro.analysis.weak_fairness import check_naming_weak
from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.counting import CountingProtocol
from repro.core.transformer import ProjectedNamingProblem, SymmetrizedProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.protocol import verify_protocol, verify_symmetric
from repro.engine.simulator import Simulator
from repro.errors import ProtocolError
from repro.schedulers.random_pair import RandomPairScheduler


def transformed(bound):
    return SymmetrizedProtocol(AsymmetricNamingProtocol(bound))


class TestConstruction:
    def test_rejects_leadered_inner(self):
        with pytest.raises(ProtocolError):
            SymmetrizedProtocol(CountingProtocol(3))

    def test_doubles_the_state_space(self):
        protocol = transformed(5)
        assert protocol.num_mobile_states == 10  # 2P, vs P+1 for Prop. 13

    def test_transformed_protocol_is_symmetric(self):
        protocol = transformed(4)
        verify_symmetric(protocol)
        verify_protocol(protocol)

    def test_equal_coins_flip(self):
        protocol = transformed(4)
        assert protocol.transition((2, 0), (3, 0)) == ((2, 1), (3, 1))
        assert protocol.transition((2, 1), (3, 1)) == ((2, 0), (3, 0))

    def test_different_coins_run_inner_with_zero_as_initiator(self):
        protocol = transformed(4)
        # Inner rule fires only on homonyms: (s, s) -> (s, s + 1).
        assert protocol.transition((2, 0), (2, 1)) == ((2, 0), (3, 1))
        assert protocol.transition((2, 1), (2, 0)) == ((3, 1), (2, 0))

    def test_projection_strips_coin(self):
        assert SymmetrizedProtocol.project((7, 1)) == 7

    def test_initial_state_tags_inner_initial(self):
        protocol = transformed(4)
        assert protocol.initial_mobile_state() is None  # inner is selfstab


class TestConvergence:
    @pytest.mark.parametrize("n,bound", [(3, 3), (4, 4), (5, 8)])
    def test_converges_under_random_scheduler(self, n, bound):
        protocol = transformed(bound)
        pop = Population(n)
        simulator = Simulator(
            protocol,
            pop,
            RandomPairScheduler(pop, seed=n),
            ProjectedNamingProblem(),
        )
        result = simulator.run(
            Configuration.uniform(pop, (0, 0)), max_interactions=1_000_000
        )
        assert result.converged
        names = [SymmetrizedProtocol.project(s) for s in result.names()]
        assert len(set(names)) == n

    def test_two_agents_locked_in_coin_step(self):
        """Like Prop. 13, the construction cannot break a fully symmetric
        pair: equal coins flip together forever."""
        protocol = transformed(3)
        pop = Population(2)
        simulator = Simulator(
            protocol,
            pop,
            RandomPairScheduler(pop, seed=0),
            ProjectedNamingProblem(),
        )
        result = simulator.run(
            Configuration.uniform(pop, (1, 0)), max_interactions=30_000
        )
        assert not result.converged


class TestExactVerification:
    """Machine-checked footnote 5: the transformer works under global
    fairness (with 2P states) and fails under weak fairness."""

    def test_solves_global_n3_labeled_checker(self):
        protocol = transformed(3)
        pop = Population(3)
        verdict = check_naming_global(
            protocol,
            pop,
            arbitrary_initial_configurations(protocol, pop),
            name_of=SymmetrizedProtocol.project,
        )
        assert verdict.solves

    def test_solves_global_n3_quotient_checker(self):
        protocol = transformed(3)
        verdict = check_naming_global_quotient(
            protocol,
            arbitrary_quotient_initials(protocol, 3),
            name_of=SymmetrizedProtocol.project,
        )
        assert verdict.solves

    def test_fails_global_n2(self):
        protocol = transformed(3)
        verdict = check_naming_global_quotient(
            protocol,
            arbitrary_quotient_initials(protocol, 2),
            name_of=SymmetrizedProtocol.project,
        )
        assert not verdict.solves

    def test_fails_under_weak_fairness(self):
        """The transformer needs global fairness (footnote 5): the exact
        weak checker finds the coin-flip livelock."""
        protocol = transformed(3)
        pop = Population(3)
        verdict = check_naming_weak(
            protocol,
            pop,
            arbitrary_initial_configurations(protocol, pop),
            name_of=SymmetrizedProtocol.project,
        )
        assert not verdict.solves

    def test_space_comparison_with_prop13(self):
        """Footnote 5 quantified: 2P transformed states vs P + 1 native."""
        from repro.core.symmetric_global import SymmetricGlobalNamingProtocol

        for bound in (3, 5, 9):
            assert (
                transformed(bound).num_mobile_states
                > SymmetricGlobalNamingProtocol(bound).num_mobile_states
            )


class TestProjectedNamingProblem:
    def test_satisfied_on_distinct_inner_names(self):
        problem = ProjectedNamingProblem()
        config = Configuration(((0, 0), (1, 1), (2, 0)))
        assert problem.is_satisfied(config)

    def test_unsatisfied_on_inner_homonyms_despite_distinct_tags(self):
        problem = ProjectedNamingProblem()
        config = Configuration(((0, 0), (0, 1)))
        assert not problem.is_satisfied(config)

    def test_stability_is_coin_agnostic(self):
        """Distinct names with equal coins must already be certified
        stable: a one-step look at tagged pairs would wrongly pass a
        protocol whose inner rule only fires after a flip."""
        protocol = transformed(3)
        problem = ProjectedNamingProblem()
        config = Configuration(((0, 0), (1, 0), (2, 0)))
        assert problem.is_solved(protocol, config)

    def test_instability_detected_through_coins(self):
        protocol = transformed(3)
        problem = ProjectedNamingProblem()
        # Two inner homonyms: the inner rule will fire once coins differ.
        config = Configuration(((0, 0), (0, 0), (2, 0)))
        assert not problem.is_stable(protocol, config)
