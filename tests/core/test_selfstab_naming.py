"""Tests for Protocol 2: self-stabilizing naming (Proposition 16)."""

import pytest

from repro.analysis.reachability import arbitrary_initial_configurations
from repro.analysis.weak_fairness import check_naming_weak
from repro.core.selfstab_naming import (
    SelfStabLeaderState,
    SelfStabilizingNamingProtocol,
)
from repro.core.usequence import sequence_length
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.protocol import verify_protocol
from repro.engine.simulator import Simulator
from repro.errors import ProtocolError
from repro.schedulers.adversarial import HomonymPreservingScheduler
from repro.schedulers.random_pair import RandomPairScheduler
from repro.schedulers.round_robin import RoundRobinScheduler
from tests.conftest import assert_distinct_names, random_configuration


class TestRules:
    def test_reset_when_guess_overflows(self):
        protocol = SelfStabilizingNamingProtocol(3)
        leader = SelfStabLeaderState(4, 7)  # n > P
        l2, m2 = protocol.transition(leader, 0)
        assert l2 == SelfStabLeaderState(0, 0)
        assert m2 == 0  # the agent is left unnamed; renaming restarts

    def test_no_reset_while_guess_in_range(self):
        protocol = SelfStabilizingNamingProtocol(3)
        leader = SelfStabLeaderState(3, 1)  # n = P still allowed (n <= P)
        l2, _ = protocol.transition(leader, 0)
        assert l2 != SelfStabLeaderState(0, 0)

    def test_reset_only_via_sink_agents(self):
        protocol = SelfStabilizingNamingProtocol(3)
        leader = SelfStabLeaderState(4, 7)
        assert protocol.is_null(leader, 2)  # named agent: no reset

    def test_homonyms_dissolve(self):
        protocol = SelfStabilizingNamingProtocol(3)
        assert protocol.transition(2, 2) == (0, 0)

    def test_uses_u_p_so_p_can_be_assigned(self):
        protocol = SelfStabilizingNamingProtocol(3)
        # After the guess reaches P the middle of U_P assigns name P.
        leader = SelfStabLeaderState(3, sequence_length(2))
        l2, name = protocol.transition(leader, 0)
        assert name == 3  # = P

    def test_well_formed_and_symmetric(self):
        verify_protocol(SelfStabilizingNamingProtocol(3))

    def test_uses_p_plus_one_states(self):
        assert SelfStabilizingNamingProtocol(6).num_mobile_states == 7

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ProtocolError):
            SelfStabilizingNamingProtocol(0)


class TestSelfStabilization:
    """Convergence from arbitrary states of *everything*, leader included,
    under weakly fair schedulers."""

    @pytest.mark.parametrize("n,bound", [(2, 2), (3, 4), (4, 4), (6, 6)])
    def test_converges_from_random_garbage(self, n, bound, rng):
        protocol = SelfStabilizingNamingProtocol(bound)
        pop = Population(n, has_leader=True)
        for trial in range(5):
            initial = random_configuration(protocol, pop, rng)
            simulator = Simulator(
                protocol,
                pop,
                RoundRobinScheduler(pop, seed=trial, shuffle_each_cycle=True),
                NamingProblem(),
            )
            result = simulator.run(initial, max_interactions=2_000_000)
            assert result.converged, initial
            assert_distinct_names(result.names())

    def test_converges_under_adversary_from_worst_start(self):
        bound = 5
        protocol = SelfStabilizingNamingProtocol(bound)
        pop = Population(5, has_leader=True)
        # Worst case: all homonyms plus a leader claiming it is done.
        initial = Configuration.from_states(
            pop, (3, 3, 3, 3, 3), SelfStabLeaderState(5, sequence_length(5))
        )
        scheduler = HomonymPreservingScheduler(pop, protocol, seed=0)
        simulator = Simulator(protocol, pop, scheduler, NamingProblem())
        result = simulator.run(initial, max_interactions=2_000_000)
        assert result.converged
        assert_distinct_names(result.names())

    def test_names_full_population(self):
        """Unlike Protocol 1, Protocol 2 names N = P agents (one extra
        state buys the U_P sequence)."""
        bound = 4
        protocol = SelfStabilizingNamingProtocol(bound)
        pop = Population(4, has_leader=True)
        simulator = Simulator(
            protocol,
            pop,
            RandomPairScheduler(pop, seed=9),
            NamingProblem(),
        )
        result = simulator.run(
            Configuration.uniform(pop, 1, SelfStabLeaderState(0, 0)),
            max_interactions=2_000_000,
        )
        assert result.converged
        assert_distinct_names(result.names())

    def test_leader_reset_happens_from_corrupt_state(self):
        """A corrupted leader (overflowed guess) must pass through the
        reset before renaming."""
        bound = 3
        protocol = SelfStabilizingNamingProtocol(bound)
        pop = Population(3, has_leader=True)
        initial = Configuration.from_states(
            pop, (1, 1, 1), SelfStabLeaderState(bound + 1, 2**bound)
        )
        simulator = Simulator(
            protocol, pop, RoundRobinScheduler(pop), NamingProblem()
        )
        result = simulator.run(initial, max_interactions=500_000)
        assert result.converged


class TestWellInitializedBehaviour:
    """With a freshly deployed BST, Protocol 2 inherits Theorem 15's
    naming shape: agents end up named 1..N (for N < P the sink 0 and the
    top name stay unused)."""

    @pytest.mark.parametrize("n,bound", [(2, 4), (3, 5), (4, 6)])
    def test_names_are_one_to_n(self, n, bound):
        protocol = SelfStabilizingNamingProtocol(bound)
        pop = Population(n, has_leader=True)
        simulator = Simulator(
            protocol, pop, RoundRobinScheduler(pop), NamingProblem()
        )
        result = simulator.run(
            Configuration.uniform(pop, 0, protocol.initial_leader_state()),
            max_interactions=1_000_000,
        )
        assert result.converged
        assert sorted(result.names()) == list(range(1, n + 1))

    def test_full_population_uses_the_extra_name(self):
        n = bound = 4
        protocol = SelfStabilizingNamingProtocol(bound)
        pop = Population(n, has_leader=True)
        simulator = Simulator(
            protocol,
            pop,
            RandomPairScheduler(pop, seed=8),
            NamingProblem(),
        )
        result = simulator.run(
            Configuration.uniform(pop, 0, protocol.initial_leader_state()),
            max_interactions=2_000_000,
        )
        assert result.converged
        assert sorted(result.names()) == list(range(1, bound + 1))


class TestExactVerification:
    """Machine-checked Proposition 16: exact weak-fairness verification
    over every configuration, leader state included."""

    @pytest.mark.parametrize("n,bound", [(1, 2), (2, 2), (2, 3), (3, 3)])
    def test_solves_naming_from_all_configurations(self, n, bound):
        protocol = SelfStabilizingNamingProtocol(bound)
        pop = Population(n, has_leader=True)
        verdict = check_naming_weak(
            protocol,
            pop,
            arbitrary_initial_configurations(protocol, pop),
        )
        assert verdict.solves, verdict.reason
