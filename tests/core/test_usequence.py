"""Tests for the universal sequence U* (ruler-function implementation)."""

import pytest

from repro.core.usequence import (
    first_occurrence,
    iter_u,
    occurrences,
    sequence_length,
    u_element,
    u_sequence,
)
from repro.errors import ReproError


class TestSequenceLength:
    @pytest.mark.parametrize(
        "n,expected", [(0, 0), (1, 1), (2, 3), (3, 7), (10, 1023)]
    )
    def test_values(self, n, expected):
        assert sequence_length(n) == expected

    def test_rejects_negative(self):
        with pytest.raises(ReproError):
            sequence_length(-1)


class TestRecursiveDefinition:
    def test_u1(self):
        assert u_sequence(1) == [1]

    def test_u2(self):
        assert u_sequence(2) == [1, 2, 1]

    def test_u3(self):
        assert u_sequence(3) == [1, 2, 1, 3, 1, 2, 1]

    def test_u0_empty(self):
        assert u_sequence(0) == []

    def test_recursion_structure(self):
        for n in range(2, 8):
            seq = u_sequence(n)
            prev = u_sequence(n - 1)
            assert seq == prev + [n] + prev

    def test_rejects_negative(self):
        with pytest.raises(ReproError):
            u_sequence(-2)


class TestClosedForm:
    @pytest.mark.parametrize("n", range(1, 10))
    def test_ruler_matches_recursion(self, n):
        seq = u_sequence(n)
        assert [u_element(k) for k in range(1, len(seq) + 1)] == seq

    def test_prefix_consistency(self):
        # U_n is a prefix of U_{n+1}: u_element needs no n argument.
        small = u_sequence(4)
        large = u_sequence(6)
        assert large[: len(small)] == small

    def test_rejects_nonpositive_index(self):
        with pytest.raises(ReproError):
            u_element(0)

    def test_large_index_without_materializing(self):
        # Position 2^40 holds the value 41; the list would be a terabyte.
        assert u_element(1 << 40) == 41

    def test_iter_matches_sequence(self):
        assert list(iter_u(5)) == u_sequence(5)


class TestOccurrences:
    @pytest.mark.parametrize("n", range(1, 8))
    def test_occurrence_counts_match_reality(self, n):
        seq = u_sequence(n)
        for value in range(1, n + 2):
            assert occurrences(value, n) == seq.count(value)

    def test_rejects_nonpositive_value(self):
        with pytest.raises(ReproError):
            occurrences(0, 3)

    def test_value_above_n_absent(self):
        assert occurrences(9, 3) == 0


class TestFirstOccurrence:
    @pytest.mark.parametrize("value", range(1, 8))
    def test_matches_sequence(self, value):
        seq = u_sequence(value)
        assert seq.index(value) + 1 == first_occurrence(value)

    def test_is_middle_of_own_level(self):
        # Protocol 1 line 6 jumps to l_n + 1, whose value is n + 1.
        for n in range(0, 10):
            assert u_element(sequence_length(n) + 1) == n + 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            first_occurrence(0)
