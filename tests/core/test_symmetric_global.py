"""Tests for the symmetric leaderless protocol (Proposition 13)."""

import pytest

from repro.analysis.model_checker import check_naming_global
from repro.analysis.reachability import arbitrary_initial_configurations
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.protocol import verify_protocol
from repro.engine.simulator import Simulator
from repro.errors import ProtocolError
from repro.schedulers.random_pair import RandomPairScheduler
from tests.conftest import assert_distinct_names, random_configuration


class TestRules:
    def test_rule_1_adopt_successor(self):
        protocol = SymmetricGlobalNamingProtocol(5)
        assert protocol.transition(2, 5) == (2, 3)
        assert protocol.transition(5, 2) == (3, 2)  # symmetric orientation

    def test_rule_1_wraps_modulo_p(self):
        protocol = SymmetricGlobalNamingProtocol(5)
        assert protocol.transition(4, 5) == (4, 0)

    def test_rule_2_homonyms_dissolve(self):
        protocol = SymmetricGlobalNamingProtocol(5)
        assert protocol.transition(3, 3) == (5, 5)

    def test_rule_3_restart(self):
        protocol = SymmetricGlobalNamingProtocol(5)
        assert protocol.transition(5, 5) == (1, 1)

    def test_distinct_names_null(self):
        protocol = SymmetricGlobalNamingProtocol(5)
        assert protocol.is_null(1, 3)

    def test_well_formed_and_symmetric(self):
        verify_protocol(SymmetricGlobalNamingProtocol(6))

    def test_uses_p_plus_one_states(self):
        assert SymmetricGlobalNamingProtocol(6).num_mobile_states == 7

    def test_reset_state_is_p(self):
        assert SymmetricGlobalNamingProtocol(6).reset_state == 6

    def test_rejects_bound_below_two(self):
        with pytest.raises(ProtocolError):
            SymmetricGlobalNamingProtocol(1)


class TestConvergence:
    @pytest.mark.parametrize("n,bound", [(3, 3), (4, 6), (6, 6), (5, 9)])
    def test_converges_under_random_scheduler(self, n, bound, rng):
        protocol = SymmetricGlobalNamingProtocol(bound)
        pop = Population(n)
        for trial in range(5):
            initial = random_configuration(protocol, pop, rng)
            simulator = Simulator(
                protocol,
                pop,
                RandomPairScheduler(pop, seed=trial),
                NamingProblem(),
            )
            result = simulator.run(initial, max_interactions=1_000_000)
            assert result.converged
            assert_distinct_names(result.names())

    def test_final_names_exclude_reset_state(self):
        bound = 5
        protocol = SymmetricGlobalNamingProtocol(bound)
        pop = Population(5)
        simulator = Simulator(
            protocol, pop, RandomPairScheduler(pop, seed=1), NamingProblem()
        )
        result = simulator.run(
            Configuration.uniform(pop, bound), max_interactions=1_000_000
        )
        assert result.converged
        assert set(result.names()) <= set(range(bound))

    def test_two_agents_never_converge(self):
        """The N > 2 restriction: with N = 2 the uniform configurations
        form a closed symmetric cycle."""
        protocol = SymmetricGlobalNamingProtocol(4)
        pop = Population(2)
        simulator = Simulator(
            protocol, pop, RandomPairScheduler(pop, seed=0), NamingProblem()
        )
        result = simulator.run(
            Configuration.uniform(pop, 1), max_interactions=50_000
        )
        assert not result.converged

    def test_two_agent_cycle_structure(self):
        protocol = SymmetricGlobalNamingProtocol(4)
        assert protocol.transition(1, 1) == (4, 4)
        assert protocol.transition(4, 4) == (1, 1)


class TestExactVerification:
    """Machine-checked Proposition 13 on small instances."""

    @pytest.mark.parametrize("n,bound", [(3, 3), (3, 4), (4, 4)])
    def test_solves_naming_under_global_fairness(self, n, bound):
        protocol = SymmetricGlobalNamingProtocol(bound)
        pop = Population(n)
        verdict = check_naming_global(
            protocol,
            pop,
            arbitrary_initial_configurations(protocol, pop),
        )
        assert verdict.solves

    def test_fails_exactly_at_n_2(self):
        protocol = SymmetricGlobalNamingProtocol(3)
        pop = Population(2)
        verdict = check_naming_global(
            protocol,
            pop,
            arbitrary_initial_configurations(protocol, pop),
        )
        assert not verdict.solves
        assert verdict.counterexample is not None
