"""Tests for the initialized-leader, uniform-start protocol (Prop. 14)."""

import pytest

from repro.analysis.weak_fairness import check_naming_weak
from repro.core.leader_uniform import (
    CounterLeaderState,
    LeaderUniformNamingProtocol,
)
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.protocol import verify_protocol
from repro.engine.simulator import Simulator
from repro.errors import ProtocolError
from repro.schedulers.adversarial import HomonymPreservingScheduler
from repro.schedulers.round_robin import RoundRobinScheduler
from tests.conftest import assert_distinct_names


def uniform_start(protocol, population):
    return Configuration.uniform(
        population,
        protocol.initial_mobile_state(),
        protocol.initial_leader_state(),
    )


class TestRules:
    def test_leader_names_fresh_agent(self):
        protocol = LeaderUniformNamingProtocol(4)
        leader = CounterLeaderState(1)
        assert protocol.transition(leader, 4) == (CounterLeaderState(2), 1)

    def test_rule_symmetric_orientation(self):
        protocol = LeaderUniformNamingProtocol(4)
        leader = CounterLeaderState(2)
        assert protocol.transition(4, leader) == (2, CounterLeaderState(3))

    def test_named_agents_untouched(self):
        protocol = LeaderUniformNamingProtocol(4)
        leader = CounterLeaderState(2)
        assert protocol.is_null(leader, 1)

    def test_counter_saturates_at_p(self):
        protocol = LeaderUniformNamingProtocol(3)
        leader = CounterLeaderState(3)
        # Counter at P: the remaining P-state agent keeps name P.
        assert protocol.is_null(leader, 3)

    def test_mobile_meetings_all_null(self):
        protocol = LeaderUniformNamingProtocol(3)
        for p in (1, 2, 3):
            for q in (1, 2, 3):
                assert protocol.is_null(p, q)

    def test_well_formed_and_symmetric(self):
        verify_protocol(LeaderUniformNamingProtocol(5))

    def test_exactly_p_states(self):
        assert LeaderUniformNamingProtocol(5).num_mobile_states == 5

    def test_initializations_designated(self):
        protocol = LeaderUniformNamingProtocol(5)
        assert protocol.initial_mobile_state() == 5
        assert protocol.initial_leader_state() == CounterLeaderState(1)

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ProtocolError):
            LeaderUniformNamingProtocol(0)


class TestConvergence:
    @pytest.mark.parametrize("n,bound", [(1, 1), (2, 4), (4, 4), (6, 9)])
    def test_converges_under_round_robin(self, n, bound):
        protocol = LeaderUniformNamingProtocol(bound)
        pop = Population(n, has_leader=True)
        simulator = Simulator(
            protocol, pop, RoundRobinScheduler(pop), NamingProblem()
        )
        result = simulator.run(
            uniform_start(protocol, pop), max_interactions=100_000
        )
        assert result.converged
        assert_distinct_names(result.names())

    def test_names_are_one_to_n_for_small_populations(self):
        bound = 8
        protocol = LeaderUniformNamingProtocol(bound)
        pop = Population(5, has_leader=True)
        simulator = Simulator(
            protocol, pop, RoundRobinScheduler(pop), NamingProblem()
        )
        result = simulator.run(uniform_start(protocol, pop))
        assert sorted(result.names()) == [1, 2, 3, 4, 5]

    def test_full_population_keeps_name_p(self):
        bound = 4
        protocol = LeaderUniformNamingProtocol(bound)
        pop = Population(4, has_leader=True)
        simulator = Simulator(
            protocol, pop, RoundRobinScheduler(pop), NamingProblem()
        )
        result = simulator.run(uniform_start(protocol, pop))
        assert result.converged
        assert sorted(result.names()) == [1, 2, 3, 4]

    def test_converges_under_adversary(self):
        protocol = LeaderUniformNamingProtocol(5)
        pop = Population(5, has_leader=True)
        scheduler = HomonymPreservingScheduler(pop, protocol, seed=1)
        simulator = Simulator(protocol, pop, scheduler, NamingProblem())
        result = simulator.run(
            uniform_start(protocol, pop), max_interactions=200_000
        )
        assert result.converged


class TestExactVerification:
    """Machine-checked Proposition 14 under weak fairness."""

    @pytest.mark.parametrize("n,bound", [(2, 2), (2, 3), (3, 3)])
    def test_solves_naming_from_designated_start(self, n, bound):
        protocol = LeaderUniformNamingProtocol(bound)
        pop = Population(n, has_leader=True)
        verdict = check_naming_weak(
            protocol, pop, [uniform_start(protocol, pop)]
        )
        assert verdict.solves

    def test_needs_uniform_initialization(self):
        """From arbitrary mobile states the P-state protocol cannot work
        (Theorem 11's territory): exhibit a failing start."""
        bound = 2
        protocol = LeaderUniformNamingProtocol(bound)
        pop = Population(2, has_leader=True)
        bad_start = Configuration.from_states(
            pop, (1, 1), protocol.initial_leader_state()
        )
        verdict = check_naming_weak(protocol, pop, [bad_start])
        assert not verdict.solves
