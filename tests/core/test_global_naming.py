"""Tests for Protocol 3: global-fairness naming with P states (Prop. 17)."""

import pytest

from repro.analysis.model_checker import check_naming_global
from repro.analysis.reachability import arbitrary_initial_configurations
from repro.analysis.weak_fairness import check_naming_weak
from repro.core.global_naming import GlobalLeaderState, GlobalNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.protocol import verify_protocol
from repro.engine.simulator import Simulator
from repro.errors import ProtocolError
from repro.schedulers.random_pair import RandomPairScheduler
from repro.schedulers.round_robin import RoundRobinScheduler
from tests.conftest import assert_distinct_names, random_configuration


class TestRules:
    def test_sweep_advances_on_matching_name(self):
        protocol = GlobalNamingProtocol(3)
        leader = GlobalLeaderState(3, 4, 1)
        l2, name = protocol.transition(leader, 1)
        assert l2.name_ptr == 2
        assert name == 1

    def test_sweep_renames_and_resets_on_mismatch(self):
        protocol = GlobalNamingProtocol(3)
        leader = GlobalLeaderState(3, 4, 2)
        l2, name = protocol.transition(leader, 0)
        assert l2.name_ptr == 0
        assert name == 2  # the agent takes the old pointer value

    def test_sweep_complete_is_silent(self):
        protocol = GlobalNamingProtocol(3)
        leader = GlobalLeaderState(3, 4, 3)  # name_ptr = P
        for name in range(3):
            assert protocol.is_null(leader, name)

    def test_sweep_inactive_below_p(self):
        protocol = GlobalNamingProtocol(3)
        leader = GlobalLeaderState(2, 2, 0)
        # n < P: the Protocol 1 core applies; named agent 1 <= n is null.
        assert protocol.is_null(leader, 1)

    def test_homonyms_dissolve(self):
        protocol = GlobalNamingProtocol(3)
        assert protocol.transition(2, 2) == (0, 0)

    def test_well_formed_and_symmetric(self):
        verify_protocol(GlobalNamingProtocol(3))

    def test_exactly_p_states(self):
        assert GlobalNamingProtocol(7).num_mobile_states == 7

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ProtocolError):
            GlobalNamingProtocol(0)

    def test_initial_leader_state(self):
        assert GlobalNamingProtocol(4).initial_leader_state() == (
            GlobalLeaderState(0, 0, 0)
        )


class TestSmallPopulations:
    """N < P: Protocol 3 behaves exactly like Protocol 1 and names fast,
    even under merely weakly fair schedulers."""

    @pytest.mark.parametrize("n,bound", [(2, 4), (3, 4), (3, 6), (5, 8)])
    def test_names_small_population(self, n, bound, rng):
        protocol = GlobalNamingProtocol(bound)
        pop = Population(n, has_leader=True)
        initial = random_configuration(
            protocol, pop, rng, leader_state=protocol.initial_leader_state()
        )
        simulator = Simulator(
            protocol, pop, RoundRobinScheduler(pop), NamingProblem()
        )
        result = simulator.run(initial, max_interactions=1_000_000)
        assert result.converged
        assert sorted(result.names()) == list(range(1, n + 1))


class TestFullPopulation:
    """N = P: the ordered sweep names everyone with names {0, ..., P-1}.
    Randomized cost grows super-exponentially in P, so simulations stay
    tiny; the exact checker covers the rest."""

    @pytest.mark.parametrize("bound", [2, 3])
    def test_names_full_population_random_scheduler(self, bound, rng):
        protocol = GlobalNamingProtocol(bound)
        pop = Population(bound, has_leader=True)
        initial = random_configuration(
            protocol, pop, rng, leader_state=protocol.initial_leader_state()
        )
        simulator = Simulator(
            protocol, pop, RandomPairScheduler(pop, seed=17), NamingProblem()
        )
        result = simulator.run(initial, max_interactions=3_000_000)
        assert result.converged
        assert sorted(result.names()) == list(range(bound))

    def test_sweep_requires_global_fairness(self):
        """Under plain weak fairness the N = P case is impossible with P
        states (Theorem 11); the exact weak checker must find the
        counterexample for Protocol 3 itself."""
        bound = 2
        protocol = GlobalNamingProtocol(bound)
        pop = Population(2, has_leader=True)
        verdict = check_naming_weak(
            protocol,
            pop,
            arbitrary_initial_configurations(
                protocol, pop, leader_states=[protocol.initial_leader_state()]
            ),
        )
        assert not verdict.solves


class TestExactVerification:
    """Machine-checked Proposition 17."""

    @pytest.mark.parametrize("n,bound", [(2, 2), (2, 3), (3, 3), (4, 4)])
    def test_solves_naming_under_global_fairness(self, n, bound):
        protocol = GlobalNamingProtocol(bound)
        pop = Population(n, has_leader=True)
        verdict = check_naming_global(
            protocol,
            pop,
            arbitrary_initial_configurations(
                protocol, pop, leader_states=[protocol.initial_leader_state()]
            ),
        )
        assert verdict.solves, verdict.reason
