"""Tests for the model-spec enumeration and the Table 1 oracle."""

import pytest

from repro.core.spec import (
    CellResult,
    Fairness,
    LeaderKind,
    MobileInit,
    ModelSpec,
    Symmetry,
    all_specs,
    table1_cell,
    table1_rows,
)


def spec(fairness, symmetry, leader, init=MobileInit.ARBITRARY):
    return ModelSpec(fairness, symmetry, leader, init)


class TestEnumeration:
    def test_twenty_four_specs(self):
        specs = list(all_specs())
        assert len(specs) == 24
        assert len(set(specs)) == 24

    def test_rows_align_with_specs(self):
        rows = table1_rows()
        assert len(rows) == 24
        for s, cell in rows:
            assert cell == table1_cell(s)

    def test_describe_mentions_all_parameters(self):
        text = spec(
            Fairness.WEAK, Symmetry.SYMMETRIC, LeaderKind.NONE
        ).describe()
        assert "weak" in text and "symmetric" in text and "no leader" in text


class TestOracleImpossibleCell:
    @pytest.mark.parametrize("init", list(MobileInit))
    def test_symmetric_weak_leaderless_impossible(self, init):
        cell = table1_cell(
            spec(Fairness.WEAK, Symmetry.SYMMETRIC, LeaderKind.NONE, init)
        )
        assert not cell.feasible
        assert cell.lower_bound_ref == "Proposition 1"
        assert cell.optimal_states(5) is None

    def test_only_one_cell_is_impossible(self):
        infeasible = [s for s in all_specs() if not table1_cell(s).feasible]
        assert len(infeasible) == 2  # the two init variants of one cell
        assert all(
            s.symmetry is Symmetry.SYMMETRIC
            and s.fairness is Fairness.WEAK
            and s.leader is LeaderKind.NONE
            for s in infeasible
        )


class TestOracleAsymmetricColumn:
    @pytest.mark.parametrize("fairness", list(Fairness))
    @pytest.mark.parametrize("leader", list(LeaderKind))
    @pytest.mark.parametrize("init", list(MobileInit))
    def test_always_p_states_via_prop12(self, fairness, leader, init):
        cell = table1_cell(
            spec(fairness, Symmetry.ASYMMETRIC, leader, init)
        )
        assert cell.feasible
        assert cell.extra_states == 0
        assert cell.protocol_ref == "Proposition 12"
        assert cell.optimal_states(7) == 7


class TestOracleSymmetricColumn:
    def test_global_no_leader_p_plus_one(self):
        cell = table1_cell(
            spec(Fairness.GLOBAL, Symmetry.SYMMETRIC, LeaderKind.NONE)
        )
        assert cell.feasible and cell.extra_states == 1
        assert cell.protocol_ref == "Proposition 13"
        assert cell.lower_bound_ref == "Proposition 2"

    def test_weak_noninit_leader_p_plus_one(self):
        cell = table1_cell(
            spec(
                Fairness.WEAK, Symmetry.SYMMETRIC, LeaderKind.NON_INITIALIZED
            )
        )
        assert cell.extra_states == 1
        assert cell.protocol_ref == "Proposition 16"
        assert cell.lower_bound_ref == "Proposition 4"

    def test_weak_init_leader_arbitrary_needs_p_plus_one(self):
        cell = table1_cell(
            spec(Fairness.WEAK, Symmetry.SYMMETRIC, LeaderKind.INITIALIZED)
        )
        assert cell.extra_states == 1
        assert cell.lower_bound_ref == "Theorem 11"

    def test_weak_init_leader_uniform_is_the_exception(self):
        cell = table1_cell(
            spec(
                Fairness.WEAK,
                Symmetry.SYMMETRIC,
                LeaderKind.INITIALIZED,
                MobileInit.UNIFORM,
            )
        )
        assert cell.extra_states == 0
        assert cell.protocol_ref == "Proposition 14"

    def test_global_init_leader_p_states(self):
        for init in MobileInit:
            cell = table1_cell(
                spec(
                    Fairness.GLOBAL,
                    Symmetry.SYMMETRIC,
                    LeaderKind.INITIALIZED,
                    init,
                )
            )
            assert cell.extra_states == 0
            assert cell.protocol_ref == "Proposition 17"

    def test_global_noninit_leader_p_plus_one(self):
        cell = table1_cell(
            spec(
                Fairness.GLOBAL,
                Symmetry.SYMMETRIC,
                LeaderKind.NON_INITIALIZED,
            )
        )
        assert cell.extra_states == 1
        assert cell.protocol_ref == "Proposition 13"


class TestCellResult:
    def test_optimal_states_offsets_bound(self):
        cell = CellResult(True, 1, "X", "Y")
        assert cell.optimal_states(10) == 11

    def test_infeasible_has_no_state_count(self):
        cell = CellResult(False, None, None, "Z")
        assert cell.optimal_states(10) is None
