"""Tests for the idle-leader adapter."""

import pytest

from repro.core.adapters import IdleLeaderState, WithIdleLeader
from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.counting import CountingProtocol
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.protocol import verify_protocol
from repro.engine.simulator import Simulator
from repro.errors import ProtocolError
from repro.schedulers.random_pair import RandomPairScheduler


class TestWrapping:
    def test_rejects_leadered_inner(self):
        with pytest.raises(ProtocolError):
            WithIdleLeader(CountingProtocol(3))

    def test_leader_interactions_null(self):
        protocol = WithIdleLeader(AsymmetricNamingProtocol(3))
        leader = IdleLeaderState()
        for s in range(3):
            assert protocol.is_null(leader, s)
            assert protocol.is_null(s, leader)

    def test_mobile_rules_delegate(self):
        inner = AsymmetricNamingProtocol(3)
        protocol = WithIdleLeader(inner)
        assert protocol.transition(1, 1) == inner.transition(1, 1)

    def test_single_leader_state(self):
        protocol = WithIdleLeader(AsymmetricNamingProtocol(3))
        assert protocol.leader_state_space() == {IdleLeaderState()}
        assert protocol.initial_leader_state() == IdleLeaderState()

    def test_mobile_space_unchanged(self):
        inner = SymmetricGlobalNamingProtocol(4)
        protocol = WithIdleLeader(inner)
        assert protocol.mobile_state_space() == inner.mobile_state_space()
        assert protocol.num_mobile_states == 5

    def test_symmetry_inherited(self):
        assert WithIdleLeader(SymmetricGlobalNamingProtocol(3)).symmetric
        assert not WithIdleLeader(AsymmetricNamingProtocol(3)).symmetric

    def test_requires_leader(self):
        assert WithIdleLeader(AsymmetricNamingProtocol(3)).requires_leader

    def test_well_formed(self):
        verify_protocol(WithIdleLeader(SymmetricGlobalNamingProtocol(3)))

    def test_display_name_mentions_idle_leader(self):
        protocol = WithIdleLeader(AsymmetricNamingProtocol(3))
        assert "idle leader" in protocol.display_name


class TestBehaviour:
    def test_wrapped_protocol_still_converges(self):
        protocol = WithIdleLeader(AsymmetricNamingProtocol(5))
        pop = Population(5, has_leader=True)
        simulator = Simulator(
            protocol, pop, RandomPairScheduler(pop, seed=4), NamingProblem()
        )
        initial = Configuration.uniform(pop, 0, IdleLeaderState())
        result = simulator.run(initial, max_interactions=500_000)
        assert result.converged
        assert len(set(result.names())) == 5
