"""Tests for the asymmetric naming protocol (Proposition 12)."""

import pytest

from repro.analysis.potential import potential
from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import NamingProblem
from repro.engine.protocol import verify_closure
from repro.engine.simulator import Simulator
from repro.errors import ProtocolError
from repro.schedulers.matching import MatchingScheduler
from repro.schedulers.random_pair import RandomPairScheduler
from repro.schedulers.round_robin import RoundRobinScheduler
from tests.conftest import assert_distinct_names, random_configuration


class TestRule:
    def test_single_rule_shape(self):
        protocol = AsymmetricNamingProtocol(5)
        assert protocol.transition(3, 3) == (3, 4)
        assert protocol.transition(4, 4) == (4, 0)  # modular wrap

    def test_distinct_states_null(self):
        protocol = AsymmetricNamingProtocol(5)
        for p in range(5):
            for q in range(5):
                if p != q:
                    assert protocol.transition(p, q) == (p, q)

    def test_closure(self):
        verify_closure(AsymmetricNamingProtocol(6))

    def test_state_count_is_exactly_p(self):
        assert AsymmetricNamingProtocol(9).num_mobile_states == 9

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ProtocolError):
            AsymmetricNamingProtocol(0)

    def test_declared_asymmetric_and_leaderless(self):
        protocol = AsymmetricNamingProtocol(3)
        assert not protocol.symmetric
        assert not protocol.requires_leader
        assert protocol.initial_mobile_state() is None  # self-stabilizing


class TestConvergence:
    @pytest.mark.parametrize("n,bound", [(2, 2), (3, 5), (5, 5), (8, 8), (8, 12)])
    def test_converges_from_uniform_start(self, n, bound):
        protocol = AsymmetricNamingProtocol(bound)
        pop = Population(n)
        simulator = Simulator(
            protocol, pop, RandomPairScheduler(pop, seed=n), NamingProblem()
        )
        result = simulator.run(
            Configuration.uniform(pop, 0), max_interactions=500_000
        )
        assert result.converged
        assert_distinct_names(result.names())

    def test_converges_from_random_starts(self, rng):
        protocol = AsymmetricNamingProtocol(6)
        pop = Population(6)
        for _ in range(20):
            initial = random_configuration(protocol, pop, rng)
            simulator = Simulator(
                protocol,
                pop,
                RandomPairScheduler(pop, seed=rng.randrange(10**6)),
                NamingProblem(),
            )
            result = simulator.run(initial, max_interactions=500_000)
            assert result.converged
            assert_distinct_names(result.names())

    def test_converges_under_weakly_fair_round_robin(self):
        protocol = AsymmetricNamingProtocol(7)
        pop = Population(7)
        simulator = Simulator(
            protocol, pop, RoundRobinScheduler(pop), NamingProblem()
        )
        result = simulator.run(
            Configuration.uniform(pop, 3), max_interactions=500_000
        )
        assert result.converged

    def test_converges_even_under_matching_adversary(self):
        """Asymmetric rules defeat Proposition 1's adversary."""
        protocol = AsymmetricNamingProtocol(6)
        pop = Population(6)
        simulator = Simulator(
            protocol, pop, MatchingScheduler(pop), NamingProblem()
        )
        result = simulator.run(
            Configuration.uniform(pop, 0), max_interactions=100_000
        )
        assert result.converged

    def test_names_within_state_space(self):
        protocol = AsymmetricNamingProtocol(4)
        pop = Population(4)
        simulator = Simulator(
            protocol, pop, RandomPairScheduler(pop, seed=3), NamingProblem()
        )
        result = simulator.run(Configuration.uniform(pop, 2))
        assert set(result.names()) <= set(range(4))


class TestPotentialArgument:
    """The proof's lexicographic potential strictly decreases with every
    non-null transition."""

    def test_potential_decreases_along_execution(self, rng):
        bound = 6
        protocol = AsymmetricNamingProtocol(bound)
        pop = Population(5)
        config = random_configuration(protocol, pop, rng)
        current = potential(config.states, bound)
        for _ in range(5000):
            x, y = rng.sample(pop.agents, 2)
            p, q = config.state_of(x), config.state_of(y)
            p2, q2 = protocol.transition(p, q)
            if (p2, q2) == (p, q):
                continue
            config = config.apply(x, y, (p2, q2))
            after = potential(config.states, bound)
            assert after < current
            current = after

    def test_silent_configurations_have_distinct_names(self):
        """Once the potential bottoms out only null transitions remain,
        which forces distinctness - the heart of the proof: exhaustively,
        every configuration with a homonym pair has a non-null meeting."""
        from itertools import product

        protocol = AsymmetricNamingProtocol(4)
        for states in product(range(4), repeat=4):
            if len(set(states)) < len(states):
                dup = next(s for s in states if states.count(s) > 1)
                assert not protocol.is_null(dup, dup)
