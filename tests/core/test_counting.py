"""Tests for Protocol 1: space-optimal counting (the substrate from [11])."""

import pytest

from repro.core.counting import (
    SINK_STATE,
    CountingLeaderState,
    CountingProtocol,
    protocol1_leader_step,
)
from repro.core.usequence import sequence_length, u_element
from repro.engine.configuration import Configuration
from repro.engine.population import Population
from repro.engine.problems import CountingProblem, NamingProblem
from repro.engine.protocol import verify_protocol
from repro.engine.simulator import Simulator
from repro.errors import ProtocolError
from repro.schedulers.adversarial import HomonymPreservingScheduler
from repro.schedulers.random_pair import RandomPairScheduler
from repro.schedulers.round_robin import RoundRobinScheduler
from tests.conftest import assert_distinct_names, random_configuration


class TestLeaderStepCore:
    def test_zero_agent_advances_pointer(self):
        n, k, name = protocol1_leader_step(0, 0, 0, max_name=3, k_cap=8)
        assert (n, k) == (1, 1)
        assert name == u_element(1) == 1

    def test_large_name_jumps_pointer(self):
        # name > n: k jumps to l_n + 1 and the guess increments.
        n, k, name = protocol1_leader_step(1, 0, 3, max_name=3, k_cap=8)
        assert k == sequence_length(1) + 1 == 2
        assert n == 2
        assert name == u_element(2) == 2

    def test_overflow_value_leaves_agent_unnamed(self):
        # At the very end of U_{P-1} the ruler value exceeds max_name.
        k_cap = sequence_length(3) + 1  # P = 4: cap 8
        n, k, name = protocol1_leader_step(
            3, sequence_length(3), 0, max_name=3, k_cap=k_cap
        )
        assert n == 4
        assert name == SINK_STATE

    def test_pointer_saturates_at_cap(self):
        n, k, name = protocol1_leader_step(2, 8, 0, max_name=3, k_cap=8)
        assert k == 8


class TestRules:
    def test_homonyms_dissolve_to_sink(self):
        protocol = CountingProtocol(4)
        assert protocol.transition(2, 2) == (0, 0)

    def test_sink_pair_is_null(self):
        protocol = CountingProtocol(4)
        assert protocol.is_null(0, 0)

    def test_distinct_mobile_names_null(self):
        protocol = CountingProtocol(4)
        assert protocol.is_null(1, 2)

    def test_leader_ignores_small_consistent_names(self):
        protocol = CountingProtocol(4)
        leader = CountingLeaderState(2, 1)
        assert protocol.is_null(leader, 1)

    def test_leader_rule_symmetric_orientation(self):
        protocol = CountingProtocol(4)
        leader = CountingLeaderState(0, 0)
        l2, m2 = protocol.transition(leader, 0)
        m3, l3 = protocol.transition(0, leader)
        assert (l2, m2) == (l3, m3)

    def test_guess_frozen_at_p(self):
        protocol = CountingProtocol(3)
        leader = CountingLeaderState(3, 4)
        assert protocol.is_null(leader, 0)

    def test_well_formed_and_symmetric(self):
        verify_protocol(CountingProtocol(4))

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ProtocolError):
            CountingProtocol(0)

    def test_initial_leader_state(self):
        assert CountingProtocol(5).initial_leader_state() == (
            CountingLeaderState(0, 0)
        )


class TestCountingConvergence:
    @pytest.mark.parametrize("n,bound", [(1, 3), (2, 4), (3, 4), (4, 4), (5, 6)])
    def test_count_reaches_exactly_n(self, n, bound, rng):
        protocol = CountingProtocol(bound)
        pop = Population(n, has_leader=True)
        initial = random_configuration(
            protocol, pop, rng, leader_state=protocol.initial_leader_state()
        )
        simulator = Simulator(
            protocol, pop, RoundRobinScheduler(pop), CountingProblem(n)
        )
        result = simulator.run(initial, max_interactions=1_000_000)
        assert result.converged
        assert result.final_configuration.leader_state.n == n

    def test_count_stable_after_convergence(self, rng):
        """Run far beyond convergence: the guess must not drift past N."""
        n, bound = 4, 5
        protocol = CountingProtocol(bound)
        pop = Population(n, has_leader=True)
        initial = random_configuration(
            protocol, pop, rng, leader_state=protocol.initial_leader_state()
        )
        simulator = Simulator(
            protocol, pop, RandomPairScheduler(pop, seed=5), problem=None
        )
        result = simulator.run(initial, max_interactions=300_000)
        assert result.final_configuration.leader_state.n == n

    def test_counts_under_adversarial_scheduler(self, rng):
        n, bound = 5, 5
        protocol = CountingProtocol(bound)
        pop = Population(n, has_leader=True)
        scheduler = HomonymPreservingScheduler(pop, protocol, seed=2)
        initial = random_configuration(
            protocol, pop, rng, leader_state=protocol.initial_leader_state()
        )
        simulator = Simulator(protocol, pop, scheduler, CountingProblem(n))
        result = simulator.run(initial, max_interactions=1_000_000)
        assert result.converged


class TestNamingByproduct:
    """Theorem 15: for N < P Protocol 1 also names the agents in
    {1, ..., N}."""

    @pytest.mark.parametrize("n,bound", [(2, 4), (3, 4), (4, 5), (5, 8)])
    def test_names_one_to_n(self, n, bound, rng):
        protocol = CountingProtocol(bound)
        pop = Population(n, has_leader=True)
        initial = random_configuration(
            protocol, pop, rng, leader_state=protocol.initial_leader_state()
        )
        simulator = Simulator(
            protocol, pop, RoundRobinScheduler(pop), NamingProblem()
        )
        result = simulator.run(initial, max_interactions=1_000_000)
        assert result.converged
        assert sorted(result.names()) == list(range(1, n + 1))

    def test_full_population_counts_but_need_not_name(self):
        """For N = P the count converges; naming is not promised (that is
        Protocol 2/3's job)."""
        n = bound = 4
        protocol = CountingProtocol(bound)
        pop = Population(n, has_leader=True)
        initial = Configuration.uniform(
            pop, 1, protocol.initial_leader_state()
        )
        simulator = Simulator(
            protocol, pop, RandomPairScheduler(pop, seed=1), CountingProblem(n)
        )
        result = simulator.run(initial, max_interactions=1_000_000)
        assert result.converged
        assert result.final_configuration.leader_state.n == n
