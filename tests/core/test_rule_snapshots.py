"""Snapshot tests: the paper protocols' exact rule tables, pinned.

Any accidental edit to a transition function (an off-by-one in the
modular successor, a flipped guard) changes these literal tables and
fails loudly, independent of whether the higher-level behaviour tests
happen to notice.
"""

from repro.core.asymmetric import AsymmetricNamingProtocol
from repro.core.counting import CountingLeaderState, CountingProtocol
from repro.core.global_naming import GlobalLeaderState, GlobalNamingProtocol
from repro.core.leader_uniform import (
    CounterLeaderState,
    LeaderUniformNamingProtocol,
)
from repro.core.symmetric_global import SymmetricGlobalNamingProtocol
from repro.reporting.rules import non_null_rules


class TestAsymmetricSnapshot:
    def test_p3_rule_table(self):
        rules = non_null_rules(AsymmetricNamingProtocol(3))
        assert rules == [
            ((0, 0), (0, 1)),
            ((1, 1), (1, 2)),
            ((2, 2), (2, 0)),
        ]


class TestProp13Snapshot:
    def test_p3_rule_table(self):
        rules = non_null_rules(SymmetricGlobalNamingProtocol(3))
        assert rules == [
            ((0, 0), (3, 3)),
            ((0, 3), (0, 1)),
            ((1, 1), (3, 3)),
            ((1, 3), (1, 2)),
            ((2, 2), (3, 3)),
            ((2, 3), (2, 0)),
            ((3, 0), (1, 0)),
            ((3, 1), (2, 1)),
            ((3, 2), (0, 2)),
            ((3, 3), (1, 1)),
        ]


class TestProp14Snapshot:
    def test_p2_rule_table(self):
        rules = non_null_rules(
            LeaderUniformNamingProtocol(2), max_leader_states=None
        )
        assert rules == [
            (
                (CounterLeaderState(1), 2),
                (CounterLeaderState(2), 1),
            ),
            (
                (2, CounterLeaderState(1)),
                (1, CounterLeaderState(2)),
            ),
        ]


class TestProtocol1Snapshot:
    def test_p2_homonym_rule(self):
        rules = dict(non_null_rules(CountingProtocol(2)))
        assert rules[(1, 1)] == (0, 0)

    def test_p2_fresh_leader_rules(self):
        rules = dict(
            non_null_rules(CountingProtocol(2), max_leader_states=None)
        )
        fresh = CountingLeaderState(0, 0)
        # Meeting the sink: advance U* and name 1.
        assert rules[(fresh, 0)] == (CountingLeaderState(1, 1), 1)
        # Meeting an over-large name: same jump (l_0 + 1 = 1).
        assert rules[(fresh, 1)] == (CountingLeaderState(1, 1), 1)
        # Orientation mirror.
        assert rules[(0, fresh)] == (1, CountingLeaderState(1, 1))

    def test_p2_converged_leader_is_silent(self):
        protocol = CountingProtocol(2)
        done = CountingLeaderState(2, 2)
        assert protocol.is_null(done, 0)
        assert protocol.is_null(done, 1)


class TestProtocol3Snapshot:
    def test_sweep_rules_at_full_population(self):
        protocol = GlobalNamingProtocol(2)
        counting_done = GlobalLeaderState(2, 2, 0)
        # Pointer matches the met agent: advance.
        assert protocol.transition(counting_done, 0) == (
            GlobalLeaderState(2, 2, 1),
            0,
        )
        # Mismatch: rename to the pointer, reset it.
        mid = GlobalLeaderState(2, 2, 1)
        assert protocol.transition(mid, 0) == (
            GlobalLeaderState(2, 2, 0),
            1,
        )
        # Sweep complete: silent.
        full = GlobalLeaderState(2, 2, 2)
        assert protocol.is_null(full, 0)
        assert protocol.is_null(full, 1)
