#!/usr/bin/env python3
"""Leaderless symmetric naming for an "equal peers" scenario.

The paper motivates symmetric rules with application-level equality: in a
social network deployed over mobile devices, no interaction should have a
distinguished initiator.  Proposition 13 gives the space-optimal protocol
for that setting: symmetric rules, no leader, self-stabilizing, ``P + 1``
states, correct under global fairness for populations of size ``N > 2``.

This script:

1. names 7 anonymous peers that all start in the same state (and again
   from random states), under the randomized scheduler;
2. demonstrates the ``N > 2`` restriction the proposition states: with
   exactly two peers the protocol cycles ``(s,s) -> (P,P) -> (1,1) -> ...``
   forever and can never break symmetry.
"""

import random

from repro import (
    Configuration,
    NamingProblem,
    Population,
    RandomPairScheduler,
    Simulator,
    SymmetricGlobalNamingProtocol,
)


def name_peers(n_peers: int, bound: int, seed: int) -> None:
    protocol = SymmetricGlobalNamingProtocol(bound)
    population = Population(n_peers)
    scheduler = RandomPairScheduler(population, seed=seed)
    simulator = Simulator(protocol, population, scheduler, NamingProblem())

    rng = random.Random(seed)
    starts = {
        "uniform (all peers identical)": Configuration.uniform(population, 1),
        "arbitrary (random residue)": Configuration.from_states(
            population,
            tuple(rng.randrange(bound + 1) for _ in range(n_peers)),
        ),
    }
    for label, initial in starts.items():
        result = simulator.run(initial, max_interactions=500_000)
        assert result.converged
        print(f"  start {label:33s} -> names {result.names()} "
              f"after {result.convergence_interaction} interactions")


def two_peer_failure(bound: int) -> None:
    protocol = SymmetricGlobalNamingProtocol(bound)
    population = Population(2)
    scheduler = RandomPairScheduler(population, seed=0)
    simulator = Simulator(protocol, population, scheduler, NamingProblem())
    initial = Configuration.uniform(population, 1)
    result = simulator.run(initial, max_interactions=50_000)
    print(f"  two peers, 50k interactions: converged = {result.converged} "
          f"(final states {result.names()})")
    assert not result.converged, "the N = 2 cycle can never break symmetry"


def main() -> None:
    bound = 8
    print(f"=== naming 7 equal peers (P = {bound}, "
          f"{bound + 1} states per peer) ===")
    name_peers(n_peers=7, bound=bound, seed=123)

    print()
    print("=== the N > 2 requirement of Proposition 13 ===")
    print("with N = 2 the rules (s,s)->(P,P), (P,P)->(1,1) form a closed")
    print("symmetric cycle; naming is unreachable:")
    two_peer_failure(bound)


if __name__ == "__main__":
    main()
