#!/usr/bin/env python3
"""The paper's motivating scenario: a mobile sensor network with a base
station, surviving transient memory corruption.

Protocol 2 (Proposition 16) names up to ``P`` arbitrarily initialized
sensors using ``P + 1`` states each, under *weak* fairness, with the base
station (BST) itself allowed to boot with garbage in its memory - the
protocol is self-stabilizing for the whole system.

The script:

1. deploys 10 sensors with random initial memory and a BST with corrupted
   variables, under the deterministic weakly fair round-robin schedule;
2. runs to certified convergence and shows the assigned names;
3. injects a burst of transient faults (half the sensors scrambled *and*
   the BST's counters wiped), and
4. shows the system re-converging on its own - no reboot, no coordinator.
"""

import random

from repro import (
    Configuration,
    NamingProblem,
    Population,
    RoundRobinScheduler,
    SelfStabilizingNamingProtocol,
    Simulator,
)
from repro.core import SelfStabLeaderState
from repro.faults import FaultEvent, FaultPlan, corrupt_leader_to, corrupt_random_mobile


def deploy(seed: int = 42):
    bound = 12  # firmware is provisioned for at most 12 sensors
    n_sensors = 10
    rng = random.Random(seed)

    protocol = SelfStabilizingNamingProtocol(bound)
    population = Population(n_sensors, has_leader=True)
    scheduler = RoundRobinScheduler(population, seed=seed, shuffle_each_cycle=True)
    simulator = Simulator(protocol, population, scheduler, NamingProblem())

    # Sensors ship with arbitrary memory; the BST booted mid-transaction.
    sensors = tuple(rng.randrange(bound + 1) for _ in range(n_sensors))
    bst = SelfStabLeaderState(n=rng.randrange(bound + 2), k=rng.randrange(2**bound))
    initial = Configuration.from_states(population, sensors, bst)
    return protocol, population, simulator, initial


def main() -> None:
    protocol, population, simulator, initial = deploy()

    print("=== phase 1: self-stabilizing bootstrap ===")
    print(f"initial sensor memory : {initial.mobile_states}")
    print(f"initial BST memory    : {initial.leader_state}")
    result = simulator.run(initial, max_interactions=1_000_000)
    assert result.converged, "Protocol 2 must converge under weak fairness"
    print(f"converged after {result.convergence_interaction} interactions")
    print(f"assigned names        : {result.names()}")

    print()
    print("=== phase 2: transient fault burst ===")
    plan = FaultPlan()
    plan.add(
        FaultEvent(
            at_interaction=0,
            corruption=corrupt_random_mobile(
                population, protocol, count=5, seed=7
            ),
            label="5 sensors scrambled",
        )
    )
    plan.add(
        FaultEvent(
            at_interaction=0,
            corruption=corrupt_leader_to(
                population, SelfStabLeaderState(0, 0)
            ),
            label="BST counters wiped",
        )
    )
    result2 = simulator.run(
        result.final_configuration,
        max_interactions=1_000_000,
        fault_hook=plan.hook,
    )
    assert result2.converged, "self-stabilization must recover"
    print(f"faults injected       : {plan.applied}")
    print(f"recovered after {result2.convergence_interaction} interactions")
    print(f"names after recovery  : {result2.names()}")
    assert len(set(result2.names())) == population.n_mobile


if __name__ == "__main__":
    main()
