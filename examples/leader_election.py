#!/usr/bin/env python3
"""Naming as a building block: self-stabilizing leader election.

The paper's introduction motivates naming as a design module for other
self-stabilizing tasks; Cai-Izumi-Wada [19] prove that self-stabilizing
leader election requires exactly N states and the exact knowledge of N -
and the single asymmetric rule of Proposition 12, run with P = N, meets
that bound: once names stabilize they are a permutation of {0, ..., N-1},
so "I hold name 0" elects exactly one leader.

The script:

1. elects a leader among 8 devices that all boot claiming leadership
   (every agent in state 0 - the worst start);
2. kills the elected leader's memory repeatedly (transient faults) and
   shows a new unique leader re-emerging each time, with no coordinator
   and no reset.
"""

from repro.core.leader_election import (
    LEADER_NAME,
    LeaderElectionProblem,
    NamingLeaderElectionProtocol,
    elected_agents,
)
from repro.engine import Configuration, Population, Simulator
from repro.faults import FaultEvent, FaultPlan, corrupt_agents
from repro.schedulers import RandomPairScheduler


def main() -> None:
    n = 8
    protocol = NamingLeaderElectionProtocol(n)
    population = Population(n)
    scheduler = RandomPairScheduler(population, seed=99)
    simulator = Simulator(
        protocol, population, scheduler, LeaderElectionProblem()
    )

    print(f"=== electing a leader among {n} agents "
          f"({protocol.num_mobile_states} states each - [19]'s bound) ===")
    start = Configuration.uniform(population, LEADER_NAME)
    print(f"start: everyone claims leadership {start.mobile_states}")
    result = simulator.run(start, max_interactions=500_000)
    assert result.converged
    leader = elected_agents(population, result.final_configuration)
    print(f"converged after {result.convergence_interaction} interactions; "
          f"leader = agent {leader[0]}, names = {result.names()}")

    print()
    print("=== repeated transient faults on the leader ===")
    config = result.final_configuration
    for round_number in range(3):
        victim = elected_agents(population, config)[0]
        # The dead leader reboots with a random-ish duplicate name.
        plan = FaultPlan()
        plan.add(
            FaultEvent(
                at_interaction=1,
                corruption=corrupt_agents([victim], [3]),
                label=f"agent {victim} loses its name",
            )
        )
        result = simulator.run(
            config, max_interactions=500_000, fault_hook=plan.hook
        )
        assert result.converged
        config = result.final_configuration
        new_leader = elected_agents(population, config)
        print(
            f"round {round_number + 1}: killed agent {victim}, "
            f"re-elected agent {new_leader[0]} after "
            f"{result.convergence_interaction} interactions"
        )
        assert len(new_leader) == 1


if __name__ == "__main__":
    main()
