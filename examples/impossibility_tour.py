#!/usr/bin/env python3
"""A guided tour of the paper's impossibility results, made executable.

Six stops:

1. **Proposition 1** - the matching adversary: a weakly fair schedule of
   perfect matchings keeps any symmetric, uniformly started, leaderless
   population perfectly symmetric forever.
2. **Proposition 2 by exhaustion** - every one of the 16 deterministic
   2-state symmetric leaderless protocols fails to name 2 agents, even
   under global fairness and even with uniform initialization.
3. **Theorem 11 by exhaustion** - every 2-state symmetric protocol with an
   initialized 2-state leader fails under weak fairness with arbitrarily
   initialized mobiles; yet Protocol 2, with one extra state, passes the
   very same exact check (tightness!).
4. **The sink state** (Section 3.1) - the structural fingerprint every
   leader-based naming protocol here carries: state 0, to which homonym
   chains collapse.
5. **The hidden agent** (Lemma 5) - Protocol 1's exact rule trace replayed
   among one extra sink-parked agent leaves the leader *provably* unable
   to tell the worlds apart, until fairness unmasks the extra agent.
6. **A synthesized counterexample** - the weak-fairness checker's failing
   SCC turned into a concrete, replayable prefix + cycle schedule that
   meets every pair yet never converges.
"""

from repro import (
    Configuration,
    MatchingScheduler,
    NamingProblem,
    Population,
    SelfStabilizingNamingProtocol,
    Simulator,
    SymmetricGlobalNamingProtocol,
)
from repro.analysis import (
    arbitrary_initial_configurations,
    check_naming_weak,
    homonym_chain,
    search,
    symmetric_leadered_protocols,
    symmetric_leaderless_protocols,
    unique_sink,
)
from repro.core import Fairness


def stop_1_matching_adversary() -> None:
    print("=== stop 1: Proposition 1's matching adversary ===")
    n = 6
    protocol = SymmetricGlobalNamingProtocol(n)
    population = Population(n)
    scheduler = MatchingScheduler(population, seed=0)
    print(f"phases (1-factorization of K_{n}): {scheduler.phases}")
    simulator = Simulator(protocol, population, scheduler, NamingProblem())
    budget = 90_000 - 90_000 % (n // 2)  # stop on a phase boundary
    result = simulator.run(Configuration.uniform(population, 1), budget)
    states = set(result.final_configuration.mobile_states)
    print(f"after {result.interactions} weakly fair interactions the "
          f"population holds {len(states)} distinct state(s): {states}")
    assert not result.converged and len(states) == 1


def stop_2_prop2_exhaustion() -> None:
    print("\n=== stop 2: Proposition 2 at P = 2, by exhaustion ===")
    outcome = search(
        symmetric_leaderless_protocols(2), sizes=[2], fairness=Fairness.GLOBAL
    )
    print(f"2-state symmetric leaderless protocols checked: {outcome.total}")
    print(f"protocols that solve naming for N = 2:          {len(outcome.solving)}")
    assert not outcome.any_solves


def stop_3_theorem11_tightness() -> None:
    print("\n=== stop 3: Theorem 11 at P = 2 - and its tightness ===")
    outcome = search(
        symmetric_leadered_protocols(2, 2), sizes=[2], fairness=Fairness.WEAK
    )
    print(f"2-state symmetric protocols with a 2-state initialized leader: "
          f"{outcome.total}; solvers: {len(outcome.solving)}")
    assert not outcome.any_solves

    protocol = SelfStabilizingNamingProtocol(2)  # P + 1 = 3 states
    population = Population(2, has_leader=True)
    verdict = check_naming_weak(
        protocol,
        population,
        arbitrary_initial_configurations(protocol, population),
    )
    print(f"Protocol 2 with P + 1 = 3 states on the same instance: "
          f"solves = {verdict.solves} "
          f"({verdict.explored_nodes} configurations, leader arbitrary too)")
    assert verdict.solves


def stop_4_sink_state() -> None:
    print("\n=== stop 4: the sink state of Section 3.1 ===")
    protocol = SelfStabilizingNamingProtocol(5)
    sink = unique_sink(protocol)
    print(f"unique sink of Protocol 2 (P = 5): state {sink}")
    for seed in (1, 3, 5):
        chain = homonym_chain(protocol, seed)
        print(f"  homonym chain from state {seed}: "
              f"{' -> '.join(map(str, chain.states))} -> cycle {chain.cycle}")


def stop_5_hidden_agent() -> None:
    print("\n=== stop 5: the hidden agent (Lemma 5's construction) ===")
    from repro.analysis import hidden_agent_demo
    from repro.core import CountingProtocol

    demo = hidden_agent_demo(CountingProtocol, bound=5, n_visible=3, sink=0)
    print("Protocol 1 converges on 3 visible agents; replaying its exact")
    print("rule trace among 4 agents (one parked in the sink) yields an")
    print(f"identical leader state: fooled = {demo.fooled} "
          f"(leader believes N = {demo.padded_final.leader_state.n})")
    print(f"once weak fairness unmasks the hidden agent, the count "
          f"recovers to {demo.recovered_count}")
    assert demo.fooled and demo.recovered_count == 4


def stop_6_synthesized_counterexample() -> None:
    print("\n=== stop 6: a synthesized weakly fair counterexample ===")
    from repro.analysis import (
        arbitrary_initial_configurations as all_starts,
        synthesize_weak_counterexample,
        verify_counterexample,
    )
    from repro.schedulers.adversarial import FixedSequenceScheduler

    protocol = SymmetricGlobalNamingProtocol(3)
    population = Population(3)
    cex = synthesize_weak_counterexample(
        protocol,
        population,
        list(all_starts(protocol, population)),
    )
    print(f"recurrent configuration : {cex.recurrent.mobile_states}")
    print(f"prefix ({len(cex.prefix)} meetings) : {cex.prefix}")
    print(f"cycle  ({len(cex.cycle)} meetings) : {cex.cycle}")
    print(f"livelock (names change forever): {cex.livelock}")
    assert verify_counterexample(protocol, population, cex)
    scheduler = FixedSequenceScheduler(population, cex.cycle)
    simulator = Simulator(protocol, population, scheduler, NamingProblem())
    result = simulator.run(cex.recurrent, max_interactions=30_000)
    print(f"replayed for {result.interactions} interactions: "
          f"converged = {result.converged} (weakly fair cycle, "
          f"covers all pairs: {scheduler.weakly_fair})")
    assert not result.converged


def main() -> None:
    stop_1_matching_adversary()
    stop_2_prop2_exhaustion()
    stop_3_theorem11_tightness()
    stop_4_sink_state()
    stop_5_hidden_agent()
    stop_6_synthesized_counterexample()
    print("\nall six impossibility demonstrations hold")


if __name__ == "__main__":
    main()
