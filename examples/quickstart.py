#!/usr/bin/env python3
"""Quickstart: name eight anonymous agents with one asymmetric rule.

Proposition 12's protocol is the smallest possible naming protocol: a
single transition rule ``(s, s) -> (s, s + 1 mod P)``, ``P`` states per
agent, no leader, no initialization, correct under weak or global fairness.
This script runs it on eight agents that all wake up in the same state and
prints every symmetry-breaking interaction on the way to distinct names.
"""

from repro import (
    AsymmetricNamingProtocol,
    Configuration,
    NamingProblem,
    Population,
    RandomPairScheduler,
    Trace,
    run_protocol,
)


def main() -> None:
    bound = 8  # the known upper bound P on the population size
    protocol = AsymmetricNamingProtocol(bound)
    population = Population(n_mobile=8)
    scheduler = RandomPairScheduler(population, seed=2018)

    # Worst case for a naming protocol: everyone starts identical.
    initial = Configuration.uniform(population, 0)

    trace = Trace(capacity=None)  # keep every non-null interaction
    result = run_protocol(
        protocol,
        population,
        scheduler,
        initial,
        NamingProblem(),
        max_interactions=100_000,
        trace=trace,
    )

    print(f"protocol : {protocol.display_name}")
    print(f"states   : {protocol.num_mobile_states} per agent (= P)")
    print(f"outcome  : {result}")
    print()
    print("symmetry-breaking interactions:")
    for record in trace:
        print(f"  {record}")
    print()
    print(f"final names: {result.names()}")
    assert result.converged
    assert len(set(result.names())) == population.n_mobile


if __name__ == "__main__":
    main()
