#!/usr/bin/env python3
"""The analyst's example: exact answers without simulation.

Population protocols on the uniform-random scheduler are Markov chains,
and agent anonymity collapses them onto multisets.  This example uses the
toolkit to answer three questions *exactly* for Protocol 3 (Prop. 17):

1. Does it solve naming at N = P = 5?  (quotient model checker - an
   instance no simulation could certify)
2. How long is it expected to take?  (lumped-chain linear solve:
   ~2 billion interactions - which is *why* no simulation could)
3. Does the cheap Prop. 13 alternative beat it when a leader is not
   actually needed?  (same machinery, side by side)
"""

from repro.analysis import (
    arbitrary_quotient_initials,
    check_naming_global_quotient,
    expected_convergence_time,
    naming_absorbing,
)
from repro.core import GlobalNamingProtocol, SymmetricGlobalNamingProtocol


def main() -> None:
    bound = 5

    print(f"=== Protocol 3 (Prop. 17) at N = P = {bound} ===")
    protocol = GlobalNamingProtocol(bound)
    leader0 = protocol.initial_leader_state()
    verdict = check_naming_global_quotient(
        protocol,
        arbitrary_quotient_initials(protocol, bound, [leader0]),
    )
    print(f"solves naming under global fairness : {verdict.solves} "
          f"(exact; {verdict.explored_nodes} multiset classes)")

    start = ((0,) * bound, leader0)
    times = expected_convergence_time(
        protocol, [start], naming_absorbing(protocol), max_nodes=100_000
    )
    print(f"expected interactions from all-sink  : {times[start]:,.0f}")
    print("(that is why the harness never simulates this instance)")

    print()
    print(f"=== the leaderless alternative (Prop. 13), N = P = {bound} ===")
    alt = SymmetricGlobalNamingProtocol(bound)
    alt_verdict = check_naming_global_quotient(
        alt, arbitrary_quotient_initials(alt, bound)
    )
    alt_start = ((bound,) * bound, None)
    alt_times = expected_convergence_time(
        alt, [alt_start], naming_absorbing(alt)
    )
    print(f"solves naming                        : {alt_verdict.solves}")
    print(f"expected interactions from all-reset : "
          f"{alt_times[alt_start]:,.1f}")
    print()
    ratio = times[start] / alt_times[alt_start]
    print(f"one extra state per agent (P+1 = {bound + 1}) buys a "
          f"{ratio:,.0f}x expected-time improvement and drops the leader -")
    print("the quantitative story behind Table 1's global-fairness row.")
    assert verdict.solves and alt_verdict.solves
    assert ratio > 1000


if __name__ == "__main__":
    main()
