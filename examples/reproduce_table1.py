#!/usr/bin/env python3
"""Regenerate the paper's Table 1 and print the evidence for each cell.

Each feasible cell is demonstrated by running the registry's space-optimal
protocol to certified convergence under schedulers of the right fairness
class *and* by exact model checking at a small bound; the infeasible cell
is demonstrated with Proposition 1's matching adversary.  See
``repro.experiments.table1`` for the harness and ``EXPERIMENTS.md`` for the
recorded outcomes.
"""

from repro.experiments.table1 import render_rows, run_table1


def main() -> None:
    bound = 5
    rows = run_table1(bound=bound, thorough=True)
    print(render_rows(rows, bound))
    print()
    mismatched = [row for row in rows if not row.match]
    print(f"cells matching the paper: {len(rows) - len(mismatched)}/{len(rows)}")
    print()
    print("evidence per cell:")
    for row in rows:
        print(f"* {row.spec.describe()}")
        for item in row.evidence:
            print(f"    - {item}")
    assert not mismatched, mismatched


if __name__ == "__main__":
    main()
